package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// MaxSweepPoints bounds a sweep grid (the product of all axis lengths). The
// HTTP layer answers 400 for anything larger.
const MaxSweepPoints = 10000

// ErrTooManyPoints is wrapped by Normalize when a grid exceeds
// MaxSweepPoints.
var ErrTooManyPoints = errors.New("sweep grid exceeds the point limit")

// Axis is one sweep dimension: either explicit Values, or a From/To/Steps
// range that Normalize expands (inclusive endpoints; From > To sweeps
// downward). After Normalize only Values is populated.
type Axis struct {
	Values []float64 `json:"values,omitempty"`
	From   float64   `json:"from,omitempty"`
	To     float64   `json:"to,omitempty"`
	Steps  int       `json:"steps,omitempty"`
}

// expand canonicalizes the axis in place: ranges become explicit Values and
// the range fields are zeroed, so equivalent axes hash identically.
func (a *Axis) expand(name string) error {
	if len(a.Values) > 0 {
		if a.From != 0 || a.To != 0 || a.Steps != 0 {
			return fmt.Errorf("sweep: %s axis sets both values and a from/to/steps range", name)
		}
	} else {
		if a.Steps < 1 {
			return fmt.Errorf("sweep: %s axis is empty (no values, steps < 1)", name)
		}
		if a.Steps > MaxSweepPoints {
			return fmt.Errorf("sweep: %s axis steps %d: %w", name, a.Steps, ErrTooManyPoints)
		}
		if !finite(a.From) || !finite(a.To) {
			return fmt.Errorf("sweep: %s axis range must be finite", name)
		}
		if a.Steps == 1 {
			if a.To != a.From && a.To != 0 {
				return fmt.Errorf("sweep: %s axis has steps=1 but from != to", name)
			}
			a.Values = []float64{a.From}
		} else {
			if a.To == a.From {
				return fmt.Errorf("sweep: %s axis range is degenerate (from == to with steps > 1)", name)
			}
			a.Values = make([]float64, a.Steps)
			span := a.To - a.From
			for i := range a.Values {
				a.Values[i] = a.From + span*float64(i)/float64(a.Steps-1)
			}
		}
		a.From, a.To, a.Steps = 0, 0, 0
	}
	if len(a.Values) > MaxSweepPoints {
		return fmt.Errorf("sweep: %s axis has %d values: %w", name, len(a.Values), ErrTooManyPoints)
	}
	seen := make(map[float64]struct{}, len(a.Values))
	for _, v := range a.Values {
		if !finite(v) {
			return fmt.Errorf("sweep: %s axis value is not finite", name)
		}
		// A repeated value would expand into two grid points with identical
		// specs — and, on a cold sweep, colliding content keys — so the grid
		// would no longer address its points uniquely.
		if _, dup := seen[v]; dup {
			return fmt.Errorf("sweep: %s axis repeats value %v", name, v)
		}
		seen[v] = struct{}{}
	}
	return nil
}

// SweepSpec describes a grid of yield-estimation points sharing one base
// spec: a duty-ratio (alpha) axis, a supply axis, a temperature axis, or any
// combination (the grid is their cross product, temperature outermost and
// alpha innermost). With WarmStart, the planner chains adjacent points: each
// point's particle filters are seeded from its predecessor's final cloud and
// — when both points share an operating point — the trained classifier rides
// along, cutting the per-point boundary-bisection and warm-up cost to zero.
type SweepSpec struct {
	// Base carries everything the axes do not: estimator, mode, seed,
	// budgets. Axis-covered fields (alpha/vdd/temp_k) must be zero in it.
	Base JobSpec `json:"base"`
	// Alpha sweeps the RTN storage duty ratio (requires base rtn=true and
	// the ecripse estimator); values must lie in [0,1].
	Alpha *Axis `json:"alpha,omitempty"`
	// Vdd sweeps the supply voltage [V]; values must be positive.
	Vdd *Axis `json:"vdd,omitempty"`
	// TempK sweeps the junction temperature [K]; values must be positive.
	TempK *Axis `json:"temp_k,omitempty"`
	// WarmStart chains adjacent points (ecripse only). It changes every
	// point's cache key — warm results are distinct deterministic outcomes —
	// so warm and cold sweeps never share point cache entries.
	WarmStart bool `json:"warm_start,omitempty"`
}

// Normalize expands the axes, validates every grid value, canonicalizes the
// base spec, and bounds the grid at MaxSweepPoints. Must be called before
// Key or Points.
func (s *SweepSpec) Normalize() error {
	if s.Alpha == nil && s.Vdd == nil && s.TempK == nil {
		return fmt.Errorf("sweep: at least one axis (alpha, vdd, temp_k) required")
	}
	points := 1
	for _, ax := range []struct {
		name string
		axis *Axis
	}{{"alpha", s.Alpha}, {"vdd", s.Vdd}, {"temp_k", s.TempK}} {
		if ax.axis == nil {
			continue
		}
		if err := ax.axis.expand(ax.name); err != nil {
			return err
		}
		points *= len(ax.axis.Values)
		if points > MaxSweepPoints {
			return fmt.Errorf("sweep: %d-point grid: %w", points, ErrTooManyPoints)
		}
	}
	if s.Alpha != nil {
		for _, v := range s.Alpha.Values {
			if v < 0 || v > 1 {
				return fmt.Errorf("sweep: alpha value %v outside [0,1]", v)
			}
		}
		if s.Base.Alpha != 0 {
			return fmt.Errorf("sweep: alpha axis conflicts with base alpha")
		}
		if !s.Base.RTN {
			return fmt.Errorf("sweep: alpha axis requires base rtn=true")
		}
	}
	if s.Vdd != nil {
		for _, v := range s.Vdd.Values {
			if v <= 0 {
				return fmt.Errorf("sweep: vdd value %v must be positive", v)
			}
		}
		if s.Base.Vdd != 0 || s.Base.Cell != nil {
			return fmt.Errorf("sweep: vdd axis conflicts with base vdd/cell")
		}
	}
	if s.TempK != nil {
		for _, v := range s.TempK.Values {
			if v <= 0 {
				return fmt.Errorf("sweep: temp_k value %v must be positive", v)
			}
		}
		if s.Base.TempK != 0 || s.Base.Cell != nil {
			return fmt.Errorf("sweep: temp_k axis conflicts with base temp_k/cell")
		}
	}
	if len(s.Base.Sweep) > 0 {
		return fmt.Errorf("sweep: base spec must not carry a legacy sweep field (use the alpha axis)")
	}
	if s.Base.WarmIn != "" || s.Base.WarmCloudOnly || s.Base.ExportWarm {
		return fmt.Errorf("sweep: the planner owns warm linkage; clear warm_in/warm_cloud_only/export_warm in the base")
	}

	// Canonicalize the base by normalizing the first grid point's spec, then
	// zeroing the axis-covered fields back out. This both validates the base
	// against the real point-spec rules and makes equivalent bases (implicit
	// vs explicit defaults) hash identically.
	probe := s.Base
	if s.Alpha != nil {
		probe.Sweep = []float64{s.Alpha.Values[0]}
	}
	if s.Vdd != nil {
		probe.Vdd = s.Vdd.Values[0]
	}
	if s.TempK != nil {
		probe.TempK = s.TempK.Values[0]
	}
	if err := probe.Normalize(); err != nil {
		return fmt.Errorf("sweep base: %w", err)
	}
	if s.Alpha != nil {
		probe.Sweep = nil
	}
	if s.Vdd != nil {
		probe.Vdd = 0
	}
	if s.TempK != nil {
		probe.TempK = 0
	}
	s.Base = probe

	if s.WarmStart && s.Base.Estimator != EstECRIPSE {
		return fmt.Errorf("sweep: warm_start requires the ecripse estimator")
	}
	return nil
}

// NumPoints returns the grid size of a normalized spec.
func (s SweepSpec) NumPoints() int {
	n := 1
	for _, a := range []*Axis{s.Alpha, s.Vdd, s.TempK} {
		if a != nil {
			n *= len(a.Values)
		}
	}
	return n
}

// Key is the sweep's content address: the hex SHA-256 of the normalized
// spec's canonical JSON. Like JobSpec.Key, the base's Parallelism is
// excluded; WarmStart is included (warm and cold sweeps produce different
// point results).
func (s SweepSpec) Key() string {
	s.Base.Parallelism = 0
	b, err := json.Marshal(s)
	if err != nil {
		panic("service: sweep spec marshal: " + err.Error()) // structurally impossible
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// PointPlan is one expanded grid point: its axis coordinates, the fully
// normalized point JobSpec (with warm linkage applied), and the point's
// content key. Nil coordinates mean the sweep has no such axis.
type PointPlan struct {
	Index int      `json:"index"`
	Alpha *float64 `json:"alpha,omitempty"`
	Vdd   *float64 `json:"vdd,omitempty"`
	TempK *float64 `json:"temp_k,omitempty"`
	// Warm reports that the point is seeded from its predecessor; CloudOnly
	// that only the cloud is carried (operating point changed).
	Warm      bool    `json:"warm,omitempty"`
	CloudOnly bool    `json:"cloud_only,omitempty"`
	Key       string  `json:"key"`
	Spec      JobSpec `json:"spec"`
}

// Points expands a normalized sweep into its point plans in grid order
// (temperature outermost, supply, then duty ratio innermost — so warm chains
// run along the alpha axis within one operating point, which is where the
// classifier carry-over is valid). With WarmStart, point i's spec names point
// i-1's key as warm_in, drops to cloud-only seeding across operating-point
// changes, and every non-final point exports its warm state.
func (s SweepSpec) Points() ([]PointPlan, error) {
	one := []float64{0}
	temps, hasTemp := one, false
	if s.TempK != nil {
		temps, hasTemp = s.TempK.Values, true
	}
	vdds, hasVdd := one, false
	if s.Vdd != nil {
		vdds, hasVdd = s.Vdd.Values, true
	}
	alphas, hasAlpha := one, false
	if s.Alpha != nil {
		alphas, hasAlpha = s.Alpha.Values, true
	}
	total := len(temps) * len(vdds) * len(alphas)
	out := make([]PointPlan, 0, total)
	prevKey := ""
	for _, tv := range temps {
		for _, vv := range vdds {
			for ai, av := range alphas {
				spec := s.Base
				if hasTemp {
					spec.TempK = tv
				}
				if hasVdd {
					spec.Vdd = vv
				}
				if hasAlpha {
					// A single-element legacy sweep, not Alpha: Normalize
					// defaults alpha=0 to 0.5, while the sweep field carries
					// the endpoint duty ratios (0 and 1) exactly.
					spec.Sweep = []float64{av}
				}
				idx := len(out)
				if s.WarmStart && idx > 0 {
					spec.WarmIn = prevKey
					// The operating point changed unless only the (innermost)
					// alpha coordinate stepped.
					if !hasAlpha || ai == 0 {
						spec.WarmCloudOnly = true
					}
				}
				if s.WarmStart && idx < total-1 {
					spec.ExportWarm = true
				}
				if err := spec.Normalize(); err != nil {
					return nil, fmt.Errorf("sweep point %d: %w", idx, err)
				}
				key := spec.Key()
				plan := PointPlan{Index: idx, Warm: spec.WarmIn != "", CloudOnly: spec.WarmCloudOnly, Key: key, Spec: spec}
				if hasAlpha {
					a := av
					plan.Alpha = &a
				}
				if hasVdd {
					v := vv
					plan.Vdd = &v
				}
				if hasTemp {
					tk := tv
					plan.TempK = &tk
				}
				out = append(out, plan)
				prevKey = key
			}
		}
	}
	return out, nil
}
