package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
)

// TestSweepCancelEventsOrdering pins the DELETE /v1/sweeps/{id} contract:
// cancellation tears down the in-flight point jobs (so their SSE streams
// close rather than hang), and the sweep's own stream delivers a terminal
// "sweep" event strictly before the closing "done" event.
func TestSweepCancelEventsOrdering(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCapacity: 16})
	defer svc.Drain(context.Background())
	var startOnce sync.Once
	started := make(chan struct{})
	svc.runFn = func(ctx context.Context, s JobSpec, c *montecarlo.Counter) (*RunResult, error) {
		startOnce.Do(func() { close(started) })
		<-ctx.Done() // hold the point until the sweep is canceled
		return nil, ctx.Err()
	}
	srv := NewServer(svc)
	srv.EventInterval = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"base":{"estimator":"naive","n":100,"seed":5},"temp_k":{"values":[300,310,320]}}`))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	var sv SweepView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatalf("decode sweep view: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit status = %d", resp.StatusCode)
	}
	<-started

	// The first point job is running and blocked; subscribe to its SSE
	// stream AND the sweep's before canceling.
	detail := getSweepHTTP(t, ts.URL, sv.ID)
	if len(detail.Points) == 0 || detail.Points[0].JobID == "" {
		t.Fatalf("sweep detail lacks the running point's job ID: %+v", detail.Points)
	}
	jobID := detail.Points[0].JobID

	jobResp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatalf("GET job events: %v", err)
	}
	defer jobResp.Body.Close()
	sweepResp, err := http.Get(ts.URL + "/v1/sweeps/" + sv.ID + "/events")
	if err != nil {
		t.Fatalf("GET sweep events: %v", err)
	}
	defer sweepResp.Body.Close()

	type streamResult struct {
		events []sseEvent
	}
	jobCh := make(chan streamResult, 1)
	sweepCh := make(chan streamResult, 1)
	go func() { jobCh <- streamResult{readSSE(t, jobResp.Body)} }()
	go func() { sweepCh <- streamResult{readSSE(t, sweepResp.Body)} }()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sv.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE sweep: %v", err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %d, want 202", delResp.StatusCode)
	}

	// Both streams must terminate on their own — the canceled point job's
	// subscription is torn down, not left hanging until a client timeout.
	var jobEvents, sweepEvents []sseEvent
	for i := 0; i < 2; i++ {
		select {
		case r := <-jobCh:
			jobEvents = r.events
		case r := <-sweepCh:
			sweepEvents = r.events
		case <-time.After(10 * time.Second):
			t.Fatal("SSE streams still open 10s after DELETE")
		}
	}
	if len(jobEvents) == 0 || jobEvents[len(jobEvents)-1].event != "done" {
		t.Fatalf("point job stream did not close with done: %v", jobEvents)
	}

	// Sweep stream ordering: ... point* ... sweep (terminal) ... done (last).
	if len(sweepEvents) == 0 {
		t.Fatal("no sweep events received")
	}
	if last := sweepEvents[len(sweepEvents)-1]; last.event != "done" {
		t.Fatalf("last sweep event = %q, want done", last.event)
	}
	sweepIdx := -1
	for i, ev := range sweepEvents {
		if ev.event != "sweep" {
			continue
		}
		if sweepIdx != -1 {
			t.Fatalf("terminal sweep event delivered twice: %v", sweepEvents)
		}
		sweepIdx = i
		var de struct {
			Kind string `json:"kind"`
			Data struct {
				ID    string `json:"id"`
				State State  `json:"state"`
			} `json:"data"`
		}
		if err := json.Unmarshal([]byte(ev.data), &de); err != nil {
			t.Fatalf("decode sweep event %q: %v", ev.data, err)
		}
		if de.Data.ID != sv.ID || de.Data.State != StateCanceled {
			t.Fatalf("terminal sweep event = %+v", de)
		}
	}
	if sweepIdx == -1 {
		t.Fatalf("no terminal sweep event before done: %v", sweepEvents)
	}
	for _, ev := range sweepEvents[sweepIdx+1:] {
		if ev.event == "point" || ev.event == "progress" {
			t.Fatalf("%q event after the terminal sweep event: %v", ev.event, sweepEvents)
		}
	}

	// The sweep itself is terminal; a second DELETE conflicts.
	if st := getSweepHTTP(t, ts.URL, sv.ID).State; st != StateCanceled {
		t.Fatalf("sweep state = %q, want canceled", st)
	}
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sv.ID, nil)
	del2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("second DELETE: %v", err)
	}
	del2.Body.Close()
	if del2.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE status = %d, want 409", del2.StatusCode)
	}
}

// getSweepHTTP fetches one sweep's detailed view.
func getSweepHTTP(t *testing.T, base, id string) SweepView {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatalf("GET sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sweep status = %d", resp.StatusCode)
	}
	var v SweepView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode sweep view: %v", err)
	}
	return v
}

// waitSweepDone polls until the sweep is terminal.
func waitSweepDone(t *testing.T, base, id string, within time.Duration) SweepView {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if v := getSweepHTTP(t, base, id); v.State.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s not terminal within %v", id, within)
	return SweepView{}
}
