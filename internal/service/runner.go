package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ecripse/internal/blockade"
	"ecripse/internal/core"
	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/obsv"
	"ecripse/internal/rtn"
	"ecripse/internal/sis"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
	"ecripse/internal/subset"
)

// RunResult is the JSON result payload of a completed job.
type RunResult struct {
	Estimate Estimate      `json:"estimate"`
	Series   []SeriesPoint `json:"series,omitempty"`
	Cost     CostSplit     `json:"cost"`
	Sweep    []SweepPoint  `json:"sweep,omitempty"`
	// PFRounds carries the ECRIPSE stage-1 convergence diagnostics (one
	// entry per particle-filter round; a sweep reports its last run's, like
	// Estimate/Series). Deterministic, hence cache-safe.
	PFRounds []core.PFRoundDiag `json:"pf_rounds,omitempty"`
	// Warm is the engine's exported warm state (final particle cloud,
	// trained classifier, trust radius), present only when the spec set
	// export_warm. Successor jobs name this result's content key as warm_in
	// and are seeded from it. Deterministic like everything else here, so it
	// caches soundly.
	Warm *core.WarmState `json:"warm,omitempty"`
	// Health is the statistical-health watchdog's verdict block (present
	// when the estimator evaluated any rule). Only deterministic,
	// scheduling-independent rules contribute, so the block is identical at
	// any parallelism and safe inside the content-addressed cache;
	// wall-clock verdicts (pipeline stalls) go to SSE/metrics only.
	Health *obsv.HealthReport `json:"health,omitempty"`
}

// runHooks carries the service's observational instruments into the runner.
// They ride the context so Config.RunFunc keeps its signature; everything
// here is optional and result-neutral.
type runHooks struct {
	indicatorHist *obsv.Histogram
	// warmResolver maps a predecessor content key to its raw RunResult
	// payload (typically a cache lookup). Required by jobs with warm_in;
	// result-neutral for everything else.
	warmResolver func(key string) (json.RawMessage, bool)
}

type hooksKey struct{}

func withRunHooks(ctx context.Context, h runHooks) context.Context {
	return context.WithValue(ctx, hooksKey{}, h)
}

func hooksFrom(ctx context.Context) runHooks {
	h, _ := ctx.Value(hooksKey{}).(runHooks)
	return h
}

// jsonFloat marshals like float64 but renders non-finite values as null
// (and reads null back as +Inf). Convergence series legitimately carry
// RelErr = +Inf before the first failure hit, and encoding/json refuses
// bare infinities.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.Inf(1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// Estimate is the wire form of stats.Estimate.
type Estimate struct {
	P      float64   `json:"p"`
	CI95   float64   `json:"ci95"`
	RelErr jsonFloat `json:"rel_err"`
	N      int       `json:"n"`
	Sims   int64     `json:"sims"`
}

// Stats converts back to the library type (round-trip exact; a null
// rel_err reads back as the +Inf it encoded).
func (e Estimate) Stats() stats.Estimate {
	return stats.Estimate{P: e.P, CI95: e.CI95, RelErr: float64(e.RelErr), N: e.N, Sims: e.Sims}
}

func toEstimate(e stats.Estimate) Estimate {
	return Estimate{P: e.P, CI95: e.CI95, RelErr: jsonFloat(e.RelErr), N: e.N, Sims: e.Sims}
}

// SeriesPoint is the wire form of stats.Point.
type SeriesPoint struct {
	Sims   int64     `json:"sims"`
	P      float64   `json:"p"`
	CI95   float64   `json:"ci95"`
	RelErr jsonFloat `json:"rel_err"`
	Var    float64   `json:"var,omitempty"`
}

func toSeries(s stats.Series) []SeriesPoint {
	if len(s) == 0 {
		return nil
	}
	out := make([]SeriesPoint, len(s))
	for i, p := range s {
		out[i] = SeriesPoint{Sims: p.Sims, P: p.P, CI95: p.CI95, RelErr: jsonFloat(p.RelErr), Var: p.Var}
	}
	return out
}

// CostSplit breaks the simulation cost down by estimator stage. Stages that
// an estimator does not have stay zero; Classified counts indicator labels
// answered by a classifier (no simulation).
type CostSplit struct {
	Init       int64 `json:"init,omitempty"`
	Warmup     int64 `json:"warmup,omitempty"`
	Stage1     int64 `json:"stage1,omitempty"`
	Stage2     int64 `json:"stage2,omitempty"`
	Classified int64 `json:"classified,omitempty"`
	Total      int64 `json:"total"`

	// Solver effort underneath the indicator calls (root solves and
	// Illinois iterations), and the tiered-fidelity split when the job ran
	// with adaptive_grid: Coarse counts samples answered at the coarse
	// tier, Escalated those that also paid for the full grid.
	RootSolves  int64 `json:"root_solves,omitempty"`
	SolverIters int64 `json:"solver_iters,omitempty"`
	Coarse      int64 `json:"coarse,omitempty"`
	Escalated   int64 `json:"escalated,omitempty"`

	// Lane occupancy of the batched indicator kernel: lockstep slots
	// issued and slots that carried a live lane (zero when the job ran on
	// the scalar path).
	LaneSlots    int64 `json:"lane_slots,omitempty"`
	LaneOccupied int64 `json:"lane_occupied,omitempty"`

	// Barrier windows the stage-2 loop ran through the double-buffered
	// pipelined driver (zero on the staged and scalar paths). Deterministic
	// — a schedule count, not a timing — so it is safe inside the
	// content-addressed result; the pipeline's wall-clock overlap/stall
	// telemetry stays out, on /metrics, like job wall time.
	PipelinedBatches int64 `json:"pipelined_batches,omitempty"`
}

// SweepPoint is one duty-ratio point of a Fig. 8-style sweep job.
type SweepPoint struct {
	Alpha    float64  `json:"alpha"`
	Estimate Estimate `json:"estimate"`
}

// RunSpec normalizes one job spec and executes it in-process with the real
// estimator runner — the CLI entry point for single jobs, sharing the exact
// code path (and therefore the determinism and content-addressing
// guarantees) of service-run jobs. counter may be nil.
func RunSpec(ctx context.Context, s JobSpec, counter *montecarlo.Counter) (*RunResult, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	if counter == nil {
		counter = &montecarlo.Counter{}
	}
	return runSpec(ctx, s, counter)
}

// runSpec executes a normalized spec deterministically: all randomness
// derives from spec.Seed, and ctx checkpoints consume none, so a fixed
// (spec, seed) yields a byte-identical RunResult — the cache-soundness
// invariant. On cancellation the partial result is returned with ctx.Err();
// a stop caused purely by the spec's own MaxSims budget counts as a clean
// completion (the budget is part of the content address, so the partial
// series is the deterministic result of that spec).
func runSpec(ctx context.Context, s JobSpec, counter *montecarlo.Counter) (*RunResult, error) {
	// Every run gets a health monitor: the service installs one wired to
	// SSE/metrics; the CLI path falls back to a silent default here so the
	// result's health block is present either way (and identical — the
	// rules read only deterministic diagnostics).
	hm := obsv.HealthFrom(ctx)
	if hm == nil {
		hm = obsv.NewHealthMonitor(obsv.HealthConfig{}, nil)
		ctx = obsv.WithHealth(ctx, hm)
	}
	runCtx := ctx
	if s.MaxSims > 0 {
		bctx, cancel := context.WithCancel(ctx)
		defer cancel()
		counter.SetLimit(s.MaxSims, cancel)
		runCtx = bctx
	}

	res, err := runEstimator(runCtx, s, counter)

	if err != nil && ctx.Err() == nil && s.MaxSims > 0 && counter.Count() >= s.MaxSims {
		err = nil // clean budget stop, not a cancellation
	}
	if res != nil {
		res.Cost.Total = counter.Count()
		if rep := hm.Report(); rep.Checks > 0 {
			res.Health = rep
		}
	}
	return res, err
}

func runEstimator(ctx context.Context, s JobSpec, counter *montecarlo.Counter) (*RunResult, error) {
	cell := s.buildCell()
	rng := rand.New(rand.NewSource(s.Seed))
	sigma := cell.SigmaVth()
	// Per-job solver telemetry for the non-ecripse estimators (the ecripse
	// engine carries its own and reports it through core.Result).
	tel := &sram.SolveTelemetry{}
	snm := &sram.SNMOptions{GridN: 24, BisectIter: 24, Telemetry: tel}
	mode := s.failureMode()

	hooks := hooksFrom(ctx)

	// fails is the counted 0/1 indicator in the normalized space, matching
	// the closures of the top-level library facade exactly.
	fails := func(x linalg.Vector) bool {
		counter.Add(1)
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		switch mode {
		case core.WriteFailure:
			return cell.WriteFails(sh, snm)
		case core.HoldFailure:
			return cell.HoldSNM(sh, snm) < 0
		default:
			return cell.Fails(sh, snm)
		}
	}
	if h := hooks.indicatorHist; h != nil {
		inner := fails
		fails = func(x linalg.Vector) bool {
			t0 := time.Now()
			failed := inner(x)
			h.Observe(time.Since(t0).Seconds())
			return failed
		}
	}

	switch s.Estimator {
	case EstECRIPSE:
		eng := core.NewEngine(cell, counter, core.Options{
			NIS: s.N, M: s.M, Mode: mode, NoClassifier: s.NoClassifier,
			AdaptiveGrid: s.AdaptiveGrid, Parallelism: s.Parallelism,
			IndicatorHist: hooks.indicatorHist,
		})
		if s.WarmIn != "" {
			ws, err := resolveWarm(s, hooks)
			if err != nil {
				return nil, err
			}
			if err := eng.SeedWarm(ws); err != nil {
				return nil, fmt.Errorf("warm seed: %w", err)
			}
		}
		if len(s.Sweep) > 0 {
			cfg := rtn.TableIConfig(cell)
			eng.InitCtx(ctx, rng)
			out := &RunResult{}
			for _, a := range s.Sweep {
				r, err := eng.RunCtx(ctx, rng, rtn.NewSampler(cell, cfg, a))
				addCost(&out.Cost, r)
				if err != nil {
					return out, err
				}
				out.Sweep = append(out.Sweep, SweepPoint{Alpha: a, Estimate: toEstimate(r.Estimate)})
				// The last point's estimate/series double as the top-level
				// ones so single-point sweeps read like plain jobs; the
				// diagnostics follow the same convention.
				out.Estimate, out.Series = toEstimate(r.Estimate), toSeries(r.Series)
				out.PFRounds = r.PFRounds
			}
			if err := exportWarm(eng, s, out); err != nil {
				return out, err
			}
			return out, nil
		}
		var sampler *rtn.Sampler
		if s.RTN {
			sampler = rtn.NewSampler(cell, rtn.TableIConfig(cell), s.Alpha)
		}
		r, err := eng.RunCtx(ctx, rng, sampler)
		out := &RunResult{Estimate: toEstimate(r.Estimate), Series: toSeries(r.Series), PFRounds: r.PFRounds}
		addCost(&out.Cost, r)
		if err == nil {
			err = exportWarm(eng, s, out)
		}
		return out, err

	case EstNaive:
		var sampler *rtn.Sampler
		if s.RTN {
			sampler = rtn.NewSampler(cell, rtn.TableIConfig(cell), s.Alpha)
		}
		trial := func(r *rand.Rand) bool {
			x := make(linalg.Vector, sram.NumTransistors)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			if sampler != nil {
				counter.Add(1)
				var sh sram.Shifts
				for i := range sh {
					sh[i] = x[i] * sigma[i]
				}
				sh = sh.Add(sampler.Sample(r))
				switch mode {
				case core.WriteFailure:
					return cell.WriteFails(sh, snm)
				case core.HoldFailure:
					return cell.HoldSNM(sh, snm) < 0
				default:
					return cell.Fails(sh, snm)
				}
			}
			return fails(x)
		}
		series := montecarlo.NaiveCtx(ctx, rng, trial, s.N, counter, 0)
		fin := series.Final()
		out := &RunResult{
			Estimate: toEstimate(stats.Estimate{
				P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr, N: s.N, Sims: counter.Count(),
			}),
			Series: toSeries(series),
		}
		out.Cost.RootSolves, out.Cost.SolverIters = tel.Totals()
		return out, ctx.Err()

	case EstSIS:
		value := func(x linalg.Vector) float64 {
			if fails(x) {
				return 1
			}
			return 0
		}
		r, err := sis.EstimateCtx(ctx, rng, sram.NumTransistors, value, counter, &sis.Options{NIS: s.N}, nil)
		out := &RunResult{
			Estimate: toEstimate(r.Estimate),
			Series:   toSeries(r.Series),
			Cost:     CostSplit{Init: r.InitSims, Stage1: r.PFSims, Stage2: r.ISSims},
		}
		out.Cost.RootSolves, out.Cost.SolverIters = tel.Totals()
		return out, err

	case EstBlockade:
		r, err := blockade.EstimateCtx(ctx, rng, sram.NumTransistors, fails, counter, s.N, nil)
		out := &RunResult{
			Estimate: toEstimate(r.Estimate),
			Series:   toSeries(r.Series),
			Cost:     CostSplit{Warmup: r.TrainSims, Stage2: r.Passed, Classified: r.Blocked},
		}
		out.Cost.RootSolves, out.Cost.SolverIters = tel.Totals()
		return out, err

	case EstSubset:
		g := func(x linalg.Vector) float64 {
			counter.Add(1)
			var sh sram.Shifts
			for i := range sh {
				sh[i] = x[i] * sigma[i]
			}
			switch mode {
			case core.WriteFailure:
				return cell.WriteMargin(sh, snm)
			case core.HoldFailure:
				return cell.HoldSNM(sh, snm)
			default:
				return cell.ReadSNM(sh, snm)
			}
		}
		if h := hooks.indicatorHist; h != nil {
			inner := g
			g = func(x linalg.Vector) float64 {
				t0 := time.Now()
				v := inner(x)
				h.Observe(time.Since(t0).Seconds())
				return v
			}
		}
		r, err := subset.EstimateCtx(ctx, rng, sram.NumTransistors, g, &subset.Options{N: s.N})
		out := &RunResult{Estimate: toEstimate(r.Estimate)}
		out.Cost.RootSolves, out.Cost.SolverIters = tel.Totals()
		return out, err
	}
	// Normalize guarantees a known estimator; this is unreachable.
	return &RunResult{}, nil
}

// resolveWarm fetches the predecessor result named by spec.WarmIn through
// the context's resolver and extracts its exported warm state. With
// warm_cloud_only the classifier and trust radius are dropped here — before
// the engine sees them — so the engine-side behavior is a pure function of
// the spec, which the cache key already encodes.
func resolveWarm(s JobSpec, hooks runHooks) (*core.WarmState, error) {
	if hooks.warmResolver == nil {
		return nil, fmt.Errorf("warm_in: no predecessor resolver in this run context")
	}
	raw, ok := hooks.warmResolver(s.WarmIn)
	if !ok {
		return nil, fmt.Errorf("warm_in: predecessor result %s not available", s.WarmIn)
	}
	var pred struct {
		Warm *core.WarmState `json:"warm"`
	}
	if err := json.Unmarshal(raw, &pred); err != nil {
		return nil, fmt.Errorf("warm_in: predecessor payload: %w", err)
	}
	if pred.Warm == nil || len(pred.Warm.Cloud) == 0 {
		return nil, fmt.Errorf("warm_in: predecessor %s exported no warm state", s.WarmIn)
	}
	if s.WarmCloudOnly {
		pred.Warm.Classifier = nil
		pred.Warm.TrustR = 0
	}
	return pred.Warm, nil
}

// exportWarm attaches the engine's final warm state to the result when the
// spec asked for it.
func exportWarm(eng *core.Engine, s JobSpec, out *RunResult) error {
	if !s.ExportWarm {
		return nil
	}
	w, err := eng.Warm()
	if err != nil {
		return fmt.Errorf("export warm: %w", err)
	}
	out.Warm = w
	return nil
}

// addCost folds a core.Result's stage split into the job cost. Init and
// warmup are engine-lifetime figures shared across a sweep's points, so
// they are assigned rather than summed; the per-run stages accumulate.
func addCost(c *CostSplit, r core.Result) {
	c.Init = r.InitSims
	c.Warmup = r.WarmupSims
	c.Stage1 += r.Stage1Sims
	c.Stage2 += r.Stage2Sims
	c.Classified += r.Classified
	c.RootSolves += r.RootSolves
	c.SolverIters += r.SolverIters
	c.Coarse += r.CoarseSims
	c.Escalated += r.Escalated
	c.LaneSlots += r.LaneSlots
	c.LaneOccupied += r.LaneOccupied
	c.PipelinedBatches += r.PipelinedBatches
}
