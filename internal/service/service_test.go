package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
)

// waitState polls until the job reaches the wanted state or the deadline
// passes.
func waitState(t *testing.T, j *Job, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s: state %q, want %q within %s", j.ID, j.State(), want, within)
}

// waitDone blocks on the job's terminal channel with a deadline.
func waitDone(t *testing.T, j *Job, within time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(within):
		t.Fatalf("job %s: not terminal within %s (state %q)", j.ID, within, j.State())
	}
}

func TestSpecNormalizeDefaultsAndKey(t *testing.T) {
	a := JobSpec{}
	if err := a.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if a.Estimator != EstECRIPSE || a.Mode != "read" || a.Seed != 1 || a.N != 20000 || a.Vdd == 0 {
		t.Fatalf("defaults not applied: %+v", a)
	}

	// A spec with the defaults spelled out must hash identically.
	b := JobSpec{Estimator: "ecripse", Mode: "read", Seed: 1, N: 20000, Vdd: a.Vdd}
	if err := b.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs hash differently:\n%s\n%s", a.Key(), b.Key())
	}

	// A different seed must change the content address.
	c := a
	c.Seed = 2
	if a.Key() == c.Key() {
		t.Fatal("seed not part of the content address")
	}

	for _, bad := range []JobSpec{
		{Mode: "explode"},
		{Estimator: "quantum"},
		{Estimator: "subset", RTN: true},
		{RTN: true, Alpha: 1.5},
		{Estimator: "naive", Sweep: []float64{0.5}},
		{N: -1},
		{Estimator: "naive", NoClassifier: true},
	} {
		bad := bad
		if err := bad.Normalize(); err == nil {
			t.Errorf("Normalize accepted invalid spec %+v", bad)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 1})
	release := make(chan struct{})
	svc.runFn = func(ctx context.Context, _ JobSpec, _ *montecarlo.Counter) (*RunResult, error) {
		select {
		case <-release:
			return &RunResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	j1, err := svc.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitState(t, j1, StateRunning, 2*time.Second) // worker occupied, queue empty

	if _, err := svc.Submit(JobSpec{Seed: 2}); err != nil {
		t.Fatalf("submit 2 (fills the queue): %v", err)
	}
	if _, err := svc.Submit(JobSpec{Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit 3: err = %v, want ErrQueueFull", err)
	}
	if d := svc.Snapshot().QueueDepth; d != 1 {
		t.Fatalf("queue depth = %d, want 1", d)
	}

	close(release)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := svc.Snapshot().Jobs[StateDone]; got != 2 {
		t.Fatalf("done jobs = %d, want 2", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	release := make(chan struct{})
	var ran sync.Map
	svc.runFn = func(ctx context.Context, spec JobSpec, _ *montecarlo.Counter) (*RunResult, error) {
		ran.Store(spec.Seed, true)
		select {
		case <-release:
			return &RunResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	j1, _ := svc.Submit(JobSpec{Seed: 1})
	waitState(t, j1, StateRunning, 2*time.Second)
	j2, err := svc.Submit(JobSpec{Seed: 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, changed, err := svc.Cancel(j2.ID); err != nil || !changed {
		t.Fatalf("cancel: changed=%v err=%v", changed, err)
	}
	if got := j2.State(); got != StateCanceled {
		t.Fatalf("queued job state after cancel = %q, want canceled", got)
	}
	close(release)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, ok := ran.Load(int64(2)); ok {
		t.Fatal("cancelled queued job was executed anyway")
	}
}

func TestCancelMidRunStopsCounter(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	svc.runFn = func(ctx context.Context, _ JobSpec, c *montecarlo.Counter) (*RunResult, error) {
		for {
			if ctx.Err() != nil {
				return &RunResult{}, ctx.Err() // partial result
			}
			c.Add(1)
			time.Sleep(100 * time.Microsecond)
		}
	}

	j, err := svc.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, j, StateRunning, 2*time.Second)
	for j.Sims() == 0 {
		time.Sleep(time.Millisecond)
	}

	if _, changed, err := svc.Cancel(j.ID); err != nil || !changed {
		t.Fatalf("cancel: changed=%v err=%v", changed, err)
	}
	waitDone(t, j, 2*time.Second)
	if got := j.State(); got != StateCanceled {
		t.Fatalf("state = %q, want canceled", got)
	}
	frozen := j.Sims()
	if frozen == 0 {
		t.Fatal("no simulations recorded before cancellation")
	}
	time.Sleep(50 * time.Millisecond)
	if again := j.Sims(); again != frozen {
		t.Fatalf("simulation counter advanced after cancel: %d -> %d", frozen, again)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestCacheHitByteIdentical exercises the real runner: the duplicate
// submission must be answered from the cache, byte-for-byte, with zero
// additional transistor-level simulations.
func TestCacheHitByteIdentical(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCapacity: 8})
	defer svc.Drain(context.Background())

	spec := JobSpec{Estimator: EstNaive, N: 1500, Seed: 11}
	j1, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitDone(t, j1, 2*time.Minute)
	if j1.State() != StateDone {
		t.Fatalf("job 1 state = %q, want done", j1.State())
	}
	if j1.Sims() != 1500 {
		t.Fatalf("job 1 sims = %d, want 1500", j1.Sims())
	}
	simsBefore := svc.Snapshot().SimsTotal

	j2, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	waitDone(t, j2, time.Second) // answered inline, no worker involved
	if j2.State() != StateDone {
		t.Fatalf("job 2 state = %q, want done", j2.State())
	}
	if v := j2.Snapshot(true); !v.Cached {
		t.Fatal("duplicate submission not flagged cached")
	}
	if !bytes.Equal(j1.Result(), j2.Result()) {
		t.Fatalf("cache hit not byte-identical:\n%s\n%s", j1.Result(), j2.Result())
	}
	if j2.Sims() != 0 {
		t.Fatalf("cache hit consumed %d simulations, want 0", j2.Sims())
	}
	m := svc.Snapshot()
	if m.SimsTotal != simsBefore {
		t.Fatalf("cumulative sims advanced on a cache hit: %d -> %d", simsBefore, m.SimsTotal)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", m.CacheHits)
	}
}

func TestGracefulDrainFinishesRunningJobs(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCapacity: 8})
	started := make(chan struct{}, 16)
	svc.runFn = func(ctx context.Context, _ JobSpec, c *montecarlo.Counter) (*RunResult, error) {
		started <- struct{}{}
		// Deliberately ignore ctx for a while: a graceful drain must let
		// running jobs complete rather than cancelling them.
		time.Sleep(30 * time.Millisecond)
		c.Add(7)
		return &RunResult{}, nil
	}

	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := svc.Submit(JobSpec{Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	<-started // at least one job is mid-run when the drain begins

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range jobs {
		if j.State() != StateDone {
			t.Fatalf("job %s state after drain = %q, want done", j.ID, j.State())
		}
	}
	if _, err := svc.Submit(JobSpec{Seed: 99}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: err = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	svc.runFn = func(ctx context.Context, _ JobSpec, _ *montecarlo.Counter) (*RunResult, error) {
		<-ctx.Done() // only a hard cancel ends this job
		return nil, ctx.Err()
	}
	j, err := svc.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, j, StateRunning, 2*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Fatal("drain returned nil despite a stuck job")
	}
	if got := j.State(); got != StateCanceled {
		t.Fatalf("straggler state = %q, want canceled", got)
	}
}

func TestPanicRecovery(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	svc.runFn = func(ctx context.Context, spec JobSpec, _ *montecarlo.Counter) (*RunResult, error) {
		if spec.Seed == 13 {
			panic("unlucky spec")
		}
		return &RunResult{}, nil
	}

	bad, err := svc.Submit(JobSpec{Seed: 13})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitDone(t, bad, 2*time.Second)
	if bad.State() != StateFailed {
		t.Fatalf("panicking job state = %q, want failed", bad.State())
	}
	if v := bad.Snapshot(false); v.Error == "" {
		t.Fatal("panicking job lost its error message")
	}

	// The worker must have survived the panic.
	ok, err := svc.Submit(JobSpec{Seed: 14})
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	waitDone(t, ok, 2*time.Second)
	if ok.State() != StateDone {
		t.Fatalf("job after panic state = %q, want done", ok.State())
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestConcurrentSubmitCancel hammers a ≥4-worker pool with concurrent
// submits and cancels; run under -race this is the acceptance check for the
// service's concurrency.
func TestConcurrentSubmitCancel(t *testing.T) {
	svc := New(Config{Workers: 4, QueueCapacity: 256})
	svc.runFn = func(ctx context.Context, _ JobSpec, c *montecarlo.Counter) (*RunResult, error) {
		for i := 0; i < 50; i++ {
			if ctx.Err() != nil {
				return &RunResult{}, ctx.Err()
			}
			c.Add(1)
			time.Sleep(50 * time.Microsecond)
		}
		return &RunResult{}, nil
	}

	const submitters, perSubmitter = 8, 12
	var wg sync.WaitGroup
	jobCh := make(chan *Job, submitters*perSubmitter)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				j, err := svc.Submit(JobSpec{Seed: int64(g*1000 + i + 1)})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobCh <- j
				if i%3 == 0 {
					go svc.Cancel(j.ID) // concurrent cancel from another goroutine
				}
				if i%4 == 0 {
					svc.Snapshot() // concurrent metrics reads
				}
			}
		}(g)
	}
	wg.Wait()
	close(jobCh)

	for j := range jobCh {
		waitDone(t, j, 10*time.Second)
		switch j.State() {
		case StateDone, StateCanceled:
		default:
			t.Fatalf("job %s ended as %q", j.ID, j.State())
		}
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	m := svc.Snapshot()
	if got := m.Jobs[StateDone] + m.Jobs[StateCanceled]; got != submitters*perSubmitter {
		t.Fatalf("terminal jobs = %d, want %d (%v)", got, submitters*perSubmitter, m.Jobs)
	}
}

func TestJobIDsAreSequential(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 8})
	svc.runFn = func(context.Context, JobSpec, *montecarlo.Counter) (*RunResult, error) {
		return &RunResult{}, nil
	}
	defer svc.Drain(context.Background())
	var prev string
	for i := 0; i < 3; i++ {
		j, err := svc.Submit(JobSpec{Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if j.ID <= prev {
			t.Fatalf("ids not increasing: %q after %q", j.ID, prev)
		}
		prev = j.ID
	}
	if want := fmt.Sprintf("j%06d", 3); prev != want {
		t.Fatalf("last id = %q, want %q", prev, want)
	}
}
