package service

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
)

// fuzzAxis builds one sweep axis from fuzz-driven fields. mode%3 selects the
// shape: absent, explicit values, or a from/to/steps range. Returns the axis
// and whether any of the numbers it carries are non-finite (which Normalize
// must reject).
func fuzzAxis(mode uint8, from, to float64, steps int) (*Axis, bool) {
	switch mode % 3 {
	case 0:
		return nil, false
	case 1:
		return &Axis{Values: []float64{from, to}}, !finite(from) || !finite(to)
	default:
		return &Axis{From: from, To: to, Steps: steps}, !finite(from) || !finite(to)
	}
}

// FuzzSweepSpec fuzzes the sweep validation and content-addressing pipeline
// the HTTP layer and the planner both lean on: non-finite axis values and
// oversized grids are always rejected, Normalize is idempotent, the sweep key
// is insensitive to JSON field order and to range-vs-explicit-values axis
// spelling, Parallelism stays out of the key while WarmStart stays in, and
// Points() expansion agrees with NumPoints and assigns warm linkage only past
// the first point.
func FuzzSweepSpec(f *testing.F) {
	// Valid shapes: an alpha range, explicit vdd values, a downward temp_k
	// range (reversed ranges sweep high-to-low, they are not errors).
	f.Add(uint8(2), 0.0, 1.0, 5, uint8(0), 0.0, 0.0, 0, uint8(0), 0.0, 0.0, 0, true, int64(7))
	f.Add(uint8(0), 0.0, 0.0, 0, uint8(1), 0.6, 0.8, 0, uint8(0), 0.0, 0.0, 0, false, int64(1))
	f.Add(uint8(0), 0.0, 0.0, 0, uint8(0), 0.0, 0.0, 0, uint8(2), 400.0, 250.0, 4, true, int64(3))
	// Invalid shapes that must come back as errors, never as panics or
	// silently accepted grids: NaN values, an Inf range endpoint, a
	// degenerate range (from == to with steps > 1), an empty axis, and a
	// cross-product grid far beyond MaxSweepPoints.
	f.Add(uint8(1), math.NaN(), 0.5, 0, uint8(0), 0.0, 0.0, 0, uint8(0), 0.0, 0.0, 0, false, int64(0))
	f.Add(uint8(0), 0.0, 0.0, 0, uint8(2), math.Inf(1), 1.0, 3, uint8(0), 0.0, 0.0, 0, false, int64(0))
	f.Add(uint8(2), 0.5, 0.5, 9, uint8(0), 0.0, 0.0, 0, uint8(0), 0.0, 0.0, 0, false, int64(0))
	f.Add(uint8(2), 0.0, 1.0, 0, uint8(0), 0.0, 0.0, 0, uint8(0), 0.0, 0.0, 0, false, int64(0))
	f.Add(uint8(2), 0.0, 1.0, 200, uint8(2), 0.5, 1.0, 200, uint8(0), 0.0, 0.0, 0, false, int64(0))

	f.Fuzz(func(t *testing.T,
		aMode uint8, aFrom, aTo float64, aSteps int,
		vMode uint8, vFrom, vTo float64, vSteps int,
		tMode uint8, tFrom, tTo float64, tSteps int,
		warm bool, seed int64) {

		alpha, aBad := fuzzAxis(aMode, aFrom, aTo, aSteps)
		vdd, vBad := fuzzAxis(vMode, vFrom, vTo, vSteps)
		tempK, tBad := fuzzAxis(tMode, tFrom, tTo, tSteps)
		spec := SweepSpec{
			Base:      JobSpec{RTN: alpha != nil, Seed: seed, N: 2000, M: 3},
			Alpha:     alpha,
			Vdd:       vdd,
			TempK:     tempK,
			WarmStart: warm,
		}

		err := spec.Normalize()
		if err != nil {
			return // invalid input is rejected, not hashed
		}
		if aBad || vBad || tBad {
			t.Fatalf("non-finite axis value survived Normalize: %+v", spec)
		}
		if n := spec.NumPoints(); n < 1 || n > MaxSweepPoints {
			t.Fatalf("normalized grid has %d points (limit %d)", n, MaxSweepPoints)
		}
		key := spec.Key()

		// Idempotence: normalizing a normalized spec changes nothing.
		again := spec
		if err := again.Normalize(); err != nil {
			t.Fatalf("re-normalize failed: %v", err)
		}
		if k := again.Key(); k != key {
			t.Fatalf("Normalize is not idempotent: %s -> %s", key, k)
		}

		// Field-order insensitivity: the same sweep arriving with JSON keys
		// in any order must land on the same key.
		canon, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("normalized sweep does not marshal: %v", err)
		}
		var reordered SweepSpec
		if err := json.Unmarshal(reorderJSON(t, canon), &reordered); err != nil {
			t.Fatalf("decode reordered sweep: %v", err)
		}
		if err := reordered.Normalize(); err != nil {
			t.Fatalf("reordered sweep failed Normalize: %v", err)
		}
		if k := reordered.Key(); k != key {
			t.Fatalf("key depends on JSON field order: %s vs %s\ncanon: %s", key, k, canon)
		}

		// Axis-spelling insensitivity: rebuilding every axis from the
		// expanded Values (how an explicit-values client would have written
		// the same grid) must hash identically to the range spelling.
		respelled := spec
		for _, ax := range []**Axis{&respelled.Alpha, &respelled.Vdd, &respelled.TempK} {
			if *ax != nil {
				*ax = &Axis{Values: append([]float64(nil), (*ax).Values...)}
			}
		}
		if err := respelled.Normalize(); err != nil {
			t.Fatalf("respelled sweep failed Normalize: %v", err)
		}
		if k := respelled.Key(); k != key {
			t.Fatalf("range and explicit-values spellings hash differently: %s vs %s", key, k)
		}

		// Parallelism must stay out of the key; WarmStart must stay in.
		par := spec
		par.Base.Parallelism = 16
		if par.Key() != key {
			t.Fatalf("key depends on base parallelism")
		}
		flipped := spec
		flipped.WarmStart = !spec.WarmStart
		if flipped.Key() == key {
			t.Fatalf("warm and cold sweeps share key %s", key)
		}

		// Points() expansion: grid size agrees with NumPoints, point keys are
		// pairwise distinct, and warm linkage starts at point 1.
		if spec.NumPoints() <= 64 {
			pts, err := spec.Points()
			if err != nil {
				t.Fatalf("Points on a normalized sweep: %v", err)
			}
			if len(pts) != spec.NumPoints() {
				t.Fatalf("Points returned %d plans for a %d-point grid", len(pts), spec.NumPoints())
			}
			seen := make(map[string]int, len(pts))
			for i, p := range pts {
				if j, dup := seen[p.Key]; dup {
					t.Fatalf("points %d and %d share key %s", j, i, p.Key)
				}
				seen[p.Key] = i
				if (i == 0 && p.Warm) || (i > 0 && warm != p.Warm) {
					t.Fatalf("point %d warm=%v under sweep warm_start=%v", i, p.Warm, warm)
				}
			}
		}
	})
}

// TestSweepSpecRejects pins the rejection behavior the HTTP layer turns into
// 400s: every malformed shape must surface as an error from Normalize (the
// oversized grid specifically as ErrTooManyPoints, which the handlers map to
// a limit-specific message), while a reversed range is a legal downward
// sweep.
func TestSweepSpecRejects(t *testing.T) {
	rtnBase := JobSpec{RTN: true, N: 1000, M: 2}
	cases := []struct {
		name     string
		spec     SweepSpec
		wantErr  bool
		tooLarge bool
	}{
		{name: "no axes", spec: SweepSpec{Base: rtnBase}, wantErr: true},
		{name: "nan value", spec: SweepSpec{Base: rtnBase, Alpha: &Axis{Values: []float64{math.NaN()}}}, wantErr: true},
		{name: "inf range", spec: SweepSpec{Base: JobSpec{N: 1000, M: 2}, Vdd: &Axis{From: 0.5, To: math.Inf(1), Steps: 3}}, wantErr: true},
		{name: "empty axis", spec: SweepSpec{Base: rtnBase, Alpha: &Axis{}}, wantErr: true},
		{name: "degenerate range", spec: SweepSpec{Base: rtnBase, Alpha: &Axis{From: 0.5, To: 0.5, Steps: 4}}, wantErr: true},
		{name: "values and range", spec: SweepSpec{Base: rtnBase, Alpha: &Axis{Values: []float64{0.5}, Steps: 2, To: 1}}, wantErr: true},
		{name: "axis over limit", spec: SweepSpec{Base: rtnBase, Alpha: &Axis{From: 0, To: 1, Steps: MaxSweepPoints + 1}}, wantErr: true, tooLarge: true},
		{name: "grid over limit", spec: SweepSpec{Base: JobSpec{RTN: true, N: 1000, M: 2}, Alpha: &Axis{From: 0, To: 1, Steps: 200}, Vdd: &Axis{From: 0.5, To: 1.0, Steps: 200}}, wantErr: true, tooLarge: true},
		{name: "alpha outside unit interval", spec: SweepSpec{Base: rtnBase, Alpha: &Axis{Values: []float64{1.5}}}, wantErr: true},
		{name: "alpha without rtn", spec: SweepSpec{Base: JobSpec{N: 1000, M: 2}, Alpha: &Axis{Values: []float64{0.5}}}, wantErr: true},
		{name: "negative vdd", spec: SweepSpec{Base: JobSpec{N: 1000, M: 2}, Vdd: &Axis{Values: []float64{-0.7}}}, wantErr: true},
		{name: "repeated axis value", spec: SweepSpec{Base: rtnBase, Alpha: &Axis{Values: []float64{0.25, 0.25}}}, wantErr: true},
		{name: "reversed range sweeps downward", spec: SweepSpec{Base: JobSpec{N: 1000, M: 2}, TempK: &Axis{From: 400, To: 250, Steps: 4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Normalize()
			if tc.wantErr && err == nil {
				t.Fatalf("Normalize accepted %+v", tc.spec)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("Normalize rejected a legal sweep: %v", err)
			}
			if tc.tooLarge && !errors.Is(err, ErrTooManyPoints) {
				t.Fatalf("oversized grid error is not ErrTooManyPoints: %v", err)
			}
			if !tc.wantErr && tc.spec.TempK != nil {
				vals := tc.spec.TempK.Values
				if len(vals) != 4 || vals[0] != 400 || vals[len(vals)-1] != 250 {
					t.Fatalf("reversed range expanded wrong: %v", vals)
				}
			}
		})
	}
}
