package service

import (
	"io"
	"sort"

	"ecripse/internal/obsv"
)

// WritePrometheus renders the metrics snapshot plus the service histograms in
// the Prometheus text exposition format (version 0.0.4). Counters here mirror
// the JSON snapshot — both read the same underlying state, so scraping either
// endpoint tells the same story.
func (s *Service) WritePrometheus(w io.Writer) error {
	m := s.Snapshot()
	p := obsv.NewPromWriter(w)

	p.Gauge("ecripsed_build_info",
		"Build identity of the serving binary (value is always 1).", 1,
		[2]string{"go_version", m.Build.GoVersion},
		[2]string{"revision", m.Build.Revision})
	p.Gauge("ecripsed_uptime_seconds",
		"Seconds since the service started.", m.UptimeSeconds)

	for _, st := range []State{StateQueued, StateRunning, StateDone, StateCanceled, StateFailed} {
		p.Gauge("ecripsed_jobs",
			"Jobs currently known to the service, by lifecycle state.",
			float64(m.Jobs[st]), [2]string{"state", string(st)})
	}
	p.Gauge("ecripsed_queue_depth", "Jobs waiting in the queue.", float64(m.QueueDepth))
	p.Gauge("ecripsed_queue_capacity", "Capacity of the job queue.", float64(m.QueueCapacity))
	p.Gauge("ecripsed_workers", "Size of the worker pool.", float64(m.Workers))
	p.Gauge("ecripsed_workers_busy", "Workers currently executing a job.", float64(m.WorkersBusy))
	p.Gauge("ecripsed_draining", "1 while the service is draining, else 0.", boolGauge(m.Draining))

	p.Counter("ecripsed_cache_hits_total", "Result-cache hits.", float64(m.CacheHits))
	p.Counter("ecripsed_cache_misses_total", "Result-cache misses.", float64(m.CacheMisses))
	p.Gauge("ecripsed_cache_size", "Entries in the result cache.", float64(m.CacheSize))
	p.Counter("ecripsed_cache_evictions_total", "Result-cache evictions.", float64(m.CacheEvictions))
	p.Counter("ecripsed_cache_evicted_cost_total",
		"Total simulation cost of evicted cache entries.", float64(m.CacheEvictedCost))
	p.Counter("ecripsed_remote_cache_hits_total",
		"Submits answered from a peer shard's result cache.", float64(m.RemoteCacheHits))

	if len(m.Tenants) > 0 {
		names := make([]string, 0, len(m.Tenants))
		for name := range m.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tv := m.Tenants[name]
			p.Counter("ecripsed_tenant_jobs_total",
				"Submits accepted per tenant.", float64(tv.Jobs), [2]string{"tenant", name})
			p.Counter("ecripsed_tenant_sims_total",
				"Simulations attributed to finished jobs per tenant.", float64(tv.Sims), [2]string{"tenant", name})
			p.Counter("ecripsed_tenant_rejected_total",
				"Submits rejected by rate limit or quota per tenant.", float64(tv.Rejected), [2]string{"tenant", name})
		}
	}

	if len(m.Sweeps) > 0 {
		for _, st := range []State{StateQueued, StateRunning, StateDone, StateCanceled, StateFailed} {
			p.Gauge("ecripsed_sweeps",
				"Sweeps currently known to the service, by lifecycle state.",
				float64(m.Sweeps[st]), [2]string{"state", string(st)})
		}
	}
	p.Counter("ecripsed_sweep_points_done_total",
		"Sweep grid points driven to completion.", float64(m.SweepPointsDone))
	p.Counter("ecripsed_sweep_warm_points_total",
		"Sweep points seeded from their predecessor's warm state.", float64(m.SweepWarmPoints))
	p.Counter("ecripsed_sweep_sims_saved_total",
		"Estimated simulations avoided by sweep warm starts.", float64(m.SweepSimsSaved))

	if len(m.HealthViolations) > 0 {
		rules := make([]string, 0, len(m.HealthViolations))
		for rule := range m.HealthViolations {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			p.Counter("ecripsed_health_violations_total",
				"Statistical-health watchdog violations, by rule.",
				float64(m.HealthViolations[rule]), [2]string{"rule", rule})
		}
	}

	p.Counter("ecripsed_sims_total",
		"Transistor-level simulations consumed across all known jobs.", float64(m.SimsTotal))
	p.Counter("ecripsed_solver_root_solves_total",
		"Half-cell root solves, process-wide.", float64(m.SolverRootSolves))
	p.Counter("ecripsed_solver_iterations_total",
		"Illinois iterations spent in root solves, process-wide.", float64(m.SolverIters))
	p.Counter("ecripsed_batch_lane_slots_total",
		"Lockstep kernel slots issued by the batched indicator, process-wide.", float64(m.LaneSlots))
	p.Counter("ecripsed_batch_lanes_occupied_total",
		"Lockstep kernel slots that carried a live lane, process-wide.", float64(m.LaneOccupied))
	p.Counter("ecripsed_pipeline_batches_total",
		"Barrier windows completed by the pipelined stage-2 driver, process-wide.", float64(m.PipelineBatches))
	p.Counter("ecripsed_pipeline_gen_seconds_total",
		"Wall-clock seconds spent generating next-batch draws in the pipelined driver.", float64(m.PipelineGenSeconds))
	p.Counter("ecripsed_pipeline_stall_seconds_total",
		"Wall-clock seconds barriers stalled waiting on an unfinished generation.", float64(m.PipelineStallSeconds))
	p.Counter("ecripsed_pipeline_settle_seconds_total",
		"Wall-clock seconds spent settling barriers in the pipelined driver.", float64(m.PipelineSettleSeconds))
	p.Gauge("ecripsed_pipeline_overlap_frac",
		"Share of generation wall-clock hidden behind barrier settlement.", m.PipelineOverlapFrac)

	if m.Store != nil {
		p.Counter("ecripsed_store_appends_total", "Journal records appended.", float64(m.Store.Appends))
		p.Counter("ecripsed_store_compactions_total", "Snapshot compactions.", float64(m.Store.Compactions))
		p.Gauge("ecripsed_store_segment_bytes", "Size of the live journal segment.", float64(m.Store.SegmentBytes))
		p.Counter("ecripsed_store_append_errors_total", "Journal appends that failed.", float64(m.Store.AppendErrors))
	}

	p.Histogram(s.tel.jobDuration)
	p.Histogram(s.tel.queueWait)
	p.Histogram(s.tel.indicator)
	p.Histogram(s.tel.rootIters)
	return p.Err()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
