package service

import (
	"encoding/json"

	"ecripse/internal/obsv"
)

// tracePayload is the persisted/served form of a span timeline: the
// distributed trace ID plus the spans. Older journals hold the bare span
// array (pre-distributed-tracing format); decodeTrace accepts both.
type tracePayload struct {
	TraceID string          `json:"trace_id,omitempty"`
	Spans   []obsv.SpanView `json:"spans"`
}

// decodeTrace reads a trace payload in either the current object form or
// the legacy bare-array form.
func decodeTrace(raw json.RawMessage) (tracePayload, bool) {
	if len(raw) == 0 {
		return tracePayload{}, false
	}
	var tp tracePayload
	if err := json.Unmarshal(raw, &tp); err == nil && tp.Spans != nil {
		return tp, true
	}
	var spans []obsv.SpanView
	if err := json.Unmarshal(raw, &spans); err == nil && len(spans) > 0 {
		return tracePayload{Spans: spans}, true
	}
	return tracePayload{}, false
}

// pointTrace resolves the span timeline to graft under one sweep point. For
// a point the controller computed here, that is the job's own trace. For a
// point answered from the cache (including a resumed sweep whose original
// jobs completed before a crash), the cached job's trace holds only a
// cache-hit marker — so the original computing job's timeline, restored
// from its OpTrace journal record, is grafted instead and labeled with its
// source job ID.
func (s *Service) pointTrace(j *Job) (tracePayload, string, bool) {
	if !j.IsCached() {
		if tp, ok := decodeTrace(j.TracePayload()); ok {
			return tp, j.ID, true
		}
		return tracePayload{}, "", false
	}
	if src := s.findComputedByKey(j.Key, j.ID); src != nil {
		if tp, ok := decodeTrace(src.TracePayload()); ok {
			return tp, src.ID, true
		}
	}
	if tp, ok := decodeTrace(j.TracePayload()); ok {
		return tp, j.ID, true
	}
	return tracePayload{}, "", false
}

// findComputedByKey returns the earliest done, non-cached job that computed
// the given content key (excluding one job ID) — the job whose trace holds
// the real engine spans behind a cache hit.
func (s *Service) findComputedByKey(key, excludeID string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.order {
		if j.ID == excludeID || j.Key != key {
			continue
		}
		if j.State() == StateDone && !j.IsCached() {
			return j
		}
	}
	return nil
}

// AssembleSweepTrace builds the sweep's reassembled distributed trace: the
// controller's own spans (root sweep span, one `point` span per grid point)
// with every point job's timeline grafted under its point span — offsetting
// intra-job parent indices and re-rooting the job's root spans onto the
// point span. Returns the sweep's trace ID and the combined span list.
func (s *Service) AssembleSweepTrace(sw *Sweep) (string, []obsv.SpanView) {
	base := sw.trace.Spans()
	out := append([]obsv.SpanView(nil), base...)
	for idx, v := range base {
		if v.Name != "point" {
			continue
		}
		jobID, _ := v.Attrs["job"].(string)
		if jobID == "" {
			continue
		}
		j, err := s.Get(jobID)
		if err != nil {
			continue
		}
		tp, srcID, ok := s.pointTrace(j)
		if !ok {
			continue
		}
		off := len(out)
		for _, sp := range tp.Spans {
			if sp.Parent >= 0 {
				sp.Parent += off
			} else {
				sp.Parent = idx
				if srcID != jobID {
					// The engine spans came from another job's run (cache
					// hit / recovered journal); name the source.
					attrs := make(map[string]any, len(sp.Attrs)+1)
					for k, av := range sp.Attrs {
						attrs[k] = av
					}
					attrs["source_job"] = srcID
					sp.Attrs = attrs
				}
			}
			out = append(out, sp)
		}
	}
	return sw.trace.ID(), out
}
