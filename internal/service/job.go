package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"ecripse/internal/montecarlo"
	"ecripse/internal/obsv"
)

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → one of the terminal states. A queued
// job that is cancelled goes straight to canceled without running.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateCanceled State = "canceled"
	StateFailed   State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCanceled || s == StateFailed
}

// Job is one submitted yield-estimation job. All mutable fields are guarded
// by mu; the simulation counter is read lock-free (it is atomic) so
// progress can be observed while the job runs.
type Job struct {
	ID   string
	Spec JobSpec
	Key  string // content address of the spec (cache key)
	// Tenant names the authenticated API client that submitted the job
	// ("" with auth off). Set before the job is tracked, then read-only —
	// and deliberately not part of the spec, so multi-tenant traffic still
	// shares one content-addressed cache entry per distinct spec.
	Tenant string

	counter *montecarlo.Counter
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{} // closed on entering a terminal state

	// trace records the job's span timeline (service phases plus engine
	// phases); events buffers convergence diagnostics for SSE consumers.
	// rawTrace holds the persisted timeline of a recovered job instead.
	trace    *obsv.Trace
	events   *eventRing
	rawTrace json.RawMessage

	// onState observes every committed lifecycle transition (the service
	// points it at the persistent store). It is invoked outside the job
	// lock, by the goroutine that performed the transition; the state
	// machine admits no concurrent transitions, so calls are sequential
	// per job.
	onState func(j *Job, state State, errMsg string, at time.Time)

	mu       sync.Mutex
	state    State
	cached   bool
	errMsg   string
	result   json.RawMessage
	created  time.Time
	started  time.Time
	finished time.Time
}

// newJob creates a queued job whose run context descends from parent. Every
// job's trace is minted with a fresh distributed trace ID; SubmitTraced
// overwrites it with a propagated one.
func newJob(parent context.Context, id string, spec JobSpec, key string, eventCap int) *Job {
	ctx, cancel := context.WithCancel(parent)
	tr := obsv.NewTrace()
	tr.SetID(obsv.NewTraceID())
	return &Job{
		ID:      id,
		Spec:    spec,
		Key:     key,
		counter: &montecarlo.Counter{},
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		trace:   tr,
		events:  newEventRing(eventCap),
		state:   StateQueued,
		created: time.Now(),
	}
}

// restoreJob rebuilds a terminal job from the persistent store: its context
// is already released, its done channel closed, and no transition callback
// fires (the store knows this state — it supplied it).
func restoreJob(r RecoveredJob, spec JobSpec, result json.RawMessage) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &Job{
		ID:       r.ID,
		Spec:     spec,
		Key:      r.Key,
		Tenant:   r.Tenant,
		counter:  &montecarlo.Counter{},
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		trace:    obsv.NewTrace(),
		events:   newEventRing(0),
		rawTrace: r.Trace,
		state:    r.State,
		cached:   r.Cached,
		errMsg:   r.Error,
		result:   result,
		created:  r.Created,
		started:  r.Started,
		finished: r.Finished,
	}
	close(j.done)
	return j
}

// notify invokes the transition observer, if any.
func (j *Job) notify(state State, errMsg string, at time.Time) {
	if j.onState != nil {
		j.onState(j, state, errMsg, at)
	}
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Sims returns the transistor-level simulations consumed so far.
func (j *Job) Sims() int64 { return j.counter.Count() }

// IsCached reports whether the job was answered from the result cache.
func (j *Job) IsCached() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the marshaled result payload (nil while unfinished).
func (j *Job) Result() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Cancel requests cancellation. A queued job flips to canceled immediately;
// a running job keeps the running state until the worker stops at the
// estimator's next cancellation checkpoint — so once a job reads canceled,
// its simulation counter has stopped advancing. Cancel reports whether the
// request had any effect (false once terminal).
func (j *Job) Cancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	if j.state == StateQueued {
		j.state = StateCanceled
		j.errMsg = "canceled while queued"
		j.finished = time.Now()
		at := j.finished
		j.mu.Unlock()
		j.cancel()
		close(j.done)
		j.notify(StateCanceled, "canceled while queued", at)
		return true
	}
	j.mu.Unlock()
	j.cancel()
	return true
}

// markRunning transitions queued → running; it reports false when the job
// was already cancelled (the worker then skips it).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	at := j.started
	j.mu.Unlock()
	j.notify(StateRunning, "", at)
	return true
}

// finish moves the job to a terminal state with an optional result payload.
// Later calls are no-ops, so a worker completing a job races safely with
// concurrent Cancel calls.
func (j *Job) finish(state State, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	at := j.finished
	j.mu.Unlock()
	j.cancel() // release the context regardless of how the job ended
	close(j.done)
	j.notify(state, errMsg, at)
}

// finishCached marks a freshly created job as answered from the cache.
func (j *Job) finishCached(result json.RawMessage) {
	j.mu.Lock()
	j.cached = true
	j.mu.Unlock()
	j.finish(StateDone, result, "")
}

// publish buffers one diagnostic event for SSE consumers. Safe to call from
// the worker at engine barriers; never blocks.
func (j *Job) publish(kind string, data any) { j.events.publish(kind, data) }

// DiagSince drains diagnostic events at or after cursor. dropped counts
// events the cursor missed because the ring evicted them (slow consumer);
// next is the cursor for the following call.
func (j *Job) DiagSince(cursor uint64) (events []DiagEvent, dropped uint64, next uint64) {
	return j.events.since(cursor)
}

// TracePayload renders the job's span timeline as JSON — an object carrying
// the distributed trace ID plus the spans ({"trace_id": ..., "spans": [...]})
// — using the live trace for jobs run by this process, or the persisted
// timeline of a recovered job. Nil when neither exists yet.
func (j *Job) TracePayload() json.RawMessage {
	j.mu.Lock()
	raw := j.rawTrace
	j.mu.Unlock()
	if raw != nil {
		return raw
	}
	if j.trace.Len() == 0 {
		return nil
	}
	b, err := json.Marshal(tracePayload{TraceID: j.trace.ID(), Spans: j.trace.Spans()})
	if err != nil {
		return nil
	}
	return b
}

// Timeline renders the trace as indented text (empty for recovered jobs,
// whose spans live only in the persisted JSON).
func (j *Job) Timeline() string { return j.trace.Timeline() }

// timestamps returns the creation and start times under the job lock.
func (j *Job) timestamps() (created, started time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.created, j.started
}

// addQueueWaitSpan synthesizes the queue-wait span from the job's own
// timestamps, once the transition to running has stamped them.
func (j *Job) addQueueWaitSpan() {
	j.mu.Lock()
	created, started := j.created, j.started
	j.mu.Unlock()
	if started.IsZero() {
		return
	}
	j.trace.Add("queue.wait", -1, created, started)
}

// View is the JSON representation of a job served by the API.
type View struct {
	ID         string          `json:"id"`
	State      State           `json:"state"`
	Cached     bool            `json:"cached,omitempty"`
	Tenant     string          `json:"tenant,omitempty"`
	Error      string          `json:"error,omitempty"`
	Sims       int64           `json:"sims"`
	CreatedAt  string          `json:"created_at"`
	StartedAt  string          `json:"started_at,omitempty"`
	FinishedAt string          `json:"finished_at,omitempty"`
	Spec       JobSpec         `json:"spec"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Snapshot renders the job for the API. withResult=false omits the payload
// (job listings stay light even when results carry long series).
func (j *Job) Snapshot(withResult bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.ID,
		State:     j.state,
		Cached:    j.cached,
		Tenant:    j.Tenant,
		Error:     j.errMsg,
		Sims:      j.counter.Count(),
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Spec:      j.Spec,
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if withResult {
		v.Result = j.result
	}
	return v
}
