package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// cache is a content-addressed LRU result cache: key = canonical spec hash,
// value = the marshaled result payload. Because job results are
// deterministic in (spec, seed), serving a hit is byte-identical to
// re-running the job — at zero transistor-level simulations.
type cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

func newCache(capacity int) *cache {
	if capacity < 0 {
		capacity = 0 // disabled
	}
	return &cache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached payload for key and records the hit or miss.
func (c *cache) get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// put stores the payload, evicting the least recently used entry beyond
// capacity. Re-putting an existing key refreshes its recency.
func (c *cache) put(key string, val json.RawMessage) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters and the current size.
func (c *cache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
