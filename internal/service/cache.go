package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// cache is a content-addressed LRU result cache: key = canonical spec hash,
// value = the marshaled result payload. Because job results are
// deterministic in (spec, seed), serving a hit is byte-identical to
// re-running the job — at zero transistor-level simulations.
//
// Eviction is cost-weighted: entries differ enormously in what they cost to
// reproduce (a cached sweep may stand for millions of transistor-level
// simulations, a budget-capped probe for a few thousand), so when the cache
// is over capacity it scans the evictScan least-recently-used entries and
// drops the cheapest-to-recompute one rather than blindly the oldest.
type cache struct {
	mu          sync.Mutex
	cap         int
	ll          *list.List // front = most recently used
	entries     map[string]*list.Element
	hits        int64
	misses      int64
	evictions   int64
	evictedCost int64 // summed recompute cost (simulations) of evicted entries
}

type cacheEntry struct {
	key  string
	val  json.RawMessage
	cost int64 // simulations spent producing the payload
}

// evictScan bounds how far from the LRU end the cost scan looks. Small
// enough to keep eviction O(1)-ish, large enough that one expensive entry
// stuck at the tail cannot be evicted while cheap neighbours survive.
const evictScan = 8

func newCache(capacity int) *cache {
	if capacity < 0 {
		capacity = 0 // disabled
	}
	return &cache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached payload for key and records the hit or miss.
func (c *cache) get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// peek returns the cached payload without recording a hit or miss and
// without refreshing recency. Peer cache lookups use it so remote probes
// neither skew the hit rate nor keep entries alive artificially.
func (c *cache) peek(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// put stores the payload with its recompute cost (simulations spent
// producing it), evicting the cheapest entry among the evictScan least
// recently used ones when over capacity. Re-putting an existing key
// refreshes its recency and cost.
func (c *cache) put(key string, val json.RawMessage, cost int64) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, cost: cost})
	for c.ll.Len() > c.cap {
		// Strictly-less comparison scanning from the LRU end: cost ties
		// fall back to plain LRU order.
		victim := c.ll.Back()
		scan := victim
		for k := 1; k < evictScan && scan != nil; k++ {
			scan = scan.Prev()
			if scan != nil && scan.Value.(*cacheEntry).cost < victim.Value.(*cacheEntry).cost {
				victim = scan
			}
		}
		e := victim.Value.(*cacheEntry)
		c.ll.Remove(victim)
		delete(c.entries, e.key)
		c.evictions++
		c.evictedCost += e.cost
	}
}

// costFromPayload recovers the recompute cost of a persisted result payload
// for a boot-restored cache entry, by partially unmarshaling the cost split.
// A payload it cannot read costs 0 — first in line for eviction, which is
// the safe direction for an unreadable entry.
func costFromPayload(p json.RawMessage) int64 {
	var probe struct {
		Cost struct {
			Total int64 `json:"total"`
		} `json:"cost"`
	}
	if json.Unmarshal(p, &probe) != nil {
		return 0
	}
	return probe.Cost.Total
}

// cacheStats is the counter snapshot served through /metrics.
type cacheStats struct {
	hits, misses int64
	size         int
	evictions    int64
	evictedCost  int64
}

// stats returns the counters and the current size.
func (c *cache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		hits: c.hits, misses: c.misses, size: c.ll.Len(),
		evictions: c.evictions, evictedCost: c.evictedCost,
	}
}
