package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ecripse/internal/obsv"
)

// degenerateSpec is a deliberately degenerate PF configuration: hold-mode
// failure analysis at an ultra-low supply voltage, where the hold-SNM
// boundary geometry starves the particle filters and their ESS stays
// collapsed for consecutive rounds. The watchdog must flag it; the nominal
// read-mode specs used across this suite must stay healthy.
const degenerateSpec = `{"mode": "hold", "vdd": 0.45, "n": 2000, "seed": 3}`

// TestWatchdogFlagsDegeneratePF is the end-to-end acceptance test for the
// statistical-health watchdog: one real degenerate estimator run must
// surface its violations in all three places — the result's `health` block,
// the job's SSE stream (as `health` events), and the Prometheus exposition
// (as ecripsed_health_violations_total counters).
func TestWatchdogFlagsDegeneratePF(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	defer svc.Drain(context.Background())
	srv := NewServer(svc)
	srv.EventInterval = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	v, status := postJob(t, ts.URL, degenerateSpec)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	waitJobHTTP(t, ts.URL, v.ID, StateDone, 2*time.Minute)

	// 1. The result payload carries the deterministic verdict block.
	done := getJob(t, ts.URL, v.ID)
	var res struct {
		Health *obsv.HealthReport `json:"health"`
	}
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Health == nil {
		t.Fatal("result has no health block")
	}
	if res.Health.Healthy || len(res.Health.Violations) == 0 {
		t.Fatalf("degenerate run reported healthy: %+v", res.Health)
	}
	sawESS := false
	for _, viol := range res.Health.Violations {
		if viol.Rule == obsv.RuleESSCollapse {
			sawESS = true
		}
		if viol.Rule == obsv.RulePipelineStall {
			t.Fatalf("wall-clock rule leaked into the cached health block: %+v", viol)
		}
	}
	if !sawESS {
		t.Fatalf("no %s violation in %+v", obsv.RuleESSCollapse, res.Health.Violations)
	}

	// 2. The violations streamed over SSE as `health` events (the ring
	// replays them to late subscribers, so connecting after completion sees
	// the full history).
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	// SSE carries every violation the observer saw: the deterministic ones
	// (matching the result block exactly) plus any wall-clock-only verdicts
	// (pipeline stalls), which are allowed on the stream but not in the
	// cached block.
	deterministic := 0
	for _, ev := range readSSE(t, resp.Body) {
		if ev.event != "health" {
			continue
		}
		var de struct {
			Kind string               `json:"kind"`
			Data obsv.HealthViolation `json:"data"`
		}
		if err := json.Unmarshal([]byte(ev.data), &de); err != nil {
			t.Fatalf("decode health event %q: %v", ev.data, err)
		}
		if de.Data.Rule == "" || de.Data.Detail == "" {
			t.Fatalf("health event lacks rule/detail: %q", ev.data)
		}
		if de.Data.Rule != obsv.RulePipelineStall {
			deterministic++
		}
	}
	if deterministic != len(res.Health.Violations) {
		t.Fatalf("SSE delivered %d deterministic health events, result block has %d violations",
			deterministic, len(res.Health.Violations))
	}

	// 3. The per-rule counters surface in the Prometheus exposition and the
	// JSON metrics snapshot.
	mResp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer mResp.Body.Close()
	body, _ := io.ReadAll(mResp.Body)
	text := string(body)
	if problems := obsv.LintProm(text); len(problems) > 0 {
		t.Fatalf("exposition fails lint:\n%s", strings.Join(problems, "\n"))
	}
	if !strings.Contains(text, `ecripsed_health_violations_total{rule="`+obsv.RuleESSCollapse+`"}`) {
		t.Fatalf("exposition lacks the health violation counter:\n%s", text)
	}
	var m Metrics
	if st := func() int {
		r2, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET metrics json: %v", err)
		}
		defer r2.Body.Close()
		if err := json.NewDecoder(r2.Body).Decode(&m); err != nil {
			t.Fatalf("decode metrics: %v", err)
		}
		return r2.StatusCode
	}(); st != http.StatusOK {
		t.Fatalf("GET metrics json status = %d", st)
	}
	if m.HealthViolations[obsv.RuleESSCollapse] == 0 {
		t.Fatalf("JSON metrics lack health violation counters: %+v", m.HealthViolations)
	}
}

// TestHealthBlockDeterministicAcrossParallelism pins the cache-soundness
// contract for the watchdog: the health block — like every other result
// field — must be bit-identical at any intra-job parallelism, because it
// lands in the content-addressed result cache.
func TestHealthBlockDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("real estimator runs skipped in -short mode")
	}
	var spec1, spec4 JobSpec
	if err := json.Unmarshal([]byte(degenerateSpec), &spec1); err != nil {
		t.Fatal(err)
	}
	spec4 = spec1
	spec1.Parallelism = 1
	spec4.Parallelism = 4
	r1, err := RunSpec(context.Background(), spec1, nil)
	if err != nil {
		t.Fatalf("run at parallelism 1: %v", err)
	}
	r4, err := RunSpec(context.Background(), spec4, nil)
	if err != nil {
		t.Fatalf("run at parallelism 4: %v", err)
	}
	if r1.Health == nil || r4.Health == nil {
		t.Fatalf("missing health block: p1=%v p4=%v", r1.Health, r4.Health)
	}
	if !reflect.DeepEqual(r1.Health, r4.Health) {
		t.Fatalf("health block differs across parallelism:\n p=1: %+v\n p=4: %+v", r1.Health, r4.Health)
	}
	b1, _ := json.Marshal(r1)
	b4, _ := json.Marshal(r4)
	if string(b1) != string(b4) {
		t.Fatalf("result payload differs across parallelism:\n p=1: %s\n p=4: %s", b1, b4)
	}
}
