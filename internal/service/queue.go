package service

import (
	"errors"
	"sync"
)

// Errors surfaced by Submit; the HTTP layer maps them onto status codes.
var (
	// ErrQueueFull signals backpressure: the bounded queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining signals that the service no longer accepts work.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// queue is a bounded FIFO of pending jobs. It is a thin wrapper over a
// buffered channel so that workers can range over it; the mutex serializes
// enqueues against close so a drain can never panic a concurrent submit.
type queue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

func newQueue(capacity int) *queue {
	if capacity <= 0 {
		capacity = 64
	}
	return &queue{ch: make(chan *Job, capacity)}
}

// tryEnqueue appends the job or reports backpressure; it never blocks.
func (q *queue) tryEnqueue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// depth returns the number of queued jobs.
func (q *queue) depth() int { return len(q.ch) }

// capacity returns the queue bound.
func (q *queue) capacity() int { return cap(q.ch) }

// close stops intake; workers drain what is already queued and exit.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}
