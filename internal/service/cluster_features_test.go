package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
)

func instantRun(_ context.Context, _ JobSpec, c *montecarlo.Counter) (*RunResult, error) {
	c.Add(100)
	return &RunResult{}, nil
}

func TestServerBatchEndpoint(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCapacity: 32, CacheCapacity: 32, RunFunc: instantRun})
	defer svc.Drain(context.Background())
	srv := httptest.NewServer(NewServer(svc))
	defer srv.Close()

	body := `[{"seed":1},{"seed":2},{"estimator":"bogus"},{"seed":3}]`
	resp, err := http.Post(srv.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200", resp.StatusCode)
	}
	var items []BatchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(items) != 4 {
		t.Fatalf("%d items, want 4", len(items))
	}
	for i, it := range items {
		if i == 2 {
			if it.Status != http.StatusBadRequest || it.Job != nil {
				t.Errorf("item 2: status %d, want a per-item 400", it.Status)
			}
			continue
		}
		if it.Status != http.StatusAccepted || it.Job == nil {
			t.Errorf("item %d: status %d error %q, want 202 with a job", i, it.Status, it.Error)
			continue
		}
		waitJobHTTP(t, srv.URL, it.Job.ID, StateDone, 5*time.Second)
	}

	for _, bad := range []string{`[]`, `not json`} {
		resp, err := http.Post(srv.URL+"/v1/jobs:batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST batch %q: %v", bad, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestServerBatchAtomicRateLimit(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCapacity: 32, RunFunc: instantRun})
	defer svc.Drain(context.Background())
	ts, err := NewTenants([]TenantConfig{{Key: "k", Name: "acme", RatePerSec: 1, Burst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(svc)
	api.Tenants = ts
	srv := httptest.NewServer(api)
	defer srv.Close()

	// 3 specs against a burst of 2: the whole batch answers 429 with a
	// Retry-After hint, and nothing was enqueued.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs:batch",
		strings.NewReader(`[{"seed":1},{"seed":2},{"seed":3}]`))
	req.Header.Set("Authorization", "Bearer k")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive hint", ra)
	}
	if n := len(svc.Jobs()); n != 0 {
		t.Errorf("refused batch still enqueued %d jobs", n)
	}
}

func TestServerQueueFullRetryAfter(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 1})
	block := make(chan struct{})
	svc.runFn = func(ctx context.Context, _ JobSpec, _ *montecarlo.Counter) (*RunResult, error) {
		select {
		case <-block:
			return &RunResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	srv := httptest.NewServer(NewServer(svc))
	defer srv.Close()
	defer func() { close(block); svc.Drain(context.Background()) }()

	// Fill the worker and the queue, then the next submit is back-pressured
	// with an explicit retry hint.
	for seed := 1; seed <= 2; seed++ {
		if _, status := postJob(t, srv.URL, `{"seed":`+string(rune('0'+seed))+`}`); status != http.StatusAccepted {
			t.Fatalf("seed %d: status %d", seed, status)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"seed":9}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("full-queue Retry-After = %q, want 1", ra)
	}
}

func TestServerBodyLimit(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4, RunFunc: instantRun})
	defer svc.Drain(context.Background())
	api := NewServer(svc)
	api.MaxBodyBytes = 256
	srv := httptest.NewServer(api)
	defer srv.Close()

	huge := `{"estimator":"` + strings.Repeat("x", 1024) + `"}`
	for _, path := range []string{"/v1/jobs", "/v1/jobs:batch"} {
		body := huge
		if path == "/v1/jobs:batch" {
			body = "[" + huge + "]"
		}
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: status %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestRemoteCacheReadThrough pins the cluster read-through: a node that
// misses its local cache consults the RemoteCache hook and, on a hit, adopts
// the peer's payload without running anything.
func TestRemoteCacheReadThrough(t *testing.T) {
	peer := New(Config{Workers: 1, QueueCapacity: 4, CacheCapacity: 4, RunFunc: instantRun})
	defer peer.Drain(context.Background())

	spec := JobSpec{Seed: 42}
	j, err := peer.Submit(spec)
	if err != nil {
		t.Fatalf("peer submit: %v", err)
	}
	waitState(t, j, StateDone, 2*time.Second)
	norm := spec
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	key := norm.Key()
	want, ok := peer.CachedResult(key)
	if !ok {
		t.Fatal("peer did not cache the result")
	}

	var lookups int
	local := New(Config{
		Workers: 1, QueueCapacity: 4, CacheCapacity: 4, RunFunc: instantRun,
		RemoteCache: func(k string) (json.RawMessage, bool) {
			lookups++
			if k != key {
				t.Errorf("remote lookup for %s, want %s", k, key)
			}
			return peer.CachedResult(k)
		},
	})
	defer local.Drain(context.Background())

	j2, err := local.Submit(spec)
	if err != nil {
		t.Fatalf("local submit: %v", err)
	}
	v := j2.Snapshot(true)
	if !v.Cached || v.State != StateDone {
		t.Fatalf("read-through submit: cached=%v state=%s, want an immediate cache answer", v.Cached, v.State)
	}
	if !bytes.Equal(v.Result, want) {
		t.Error("adopted payload differs from the peer's cached bytes")
	}
	if lookups != 1 {
		t.Errorf("remote lookups = %d, want 1", lookups)
	}
	m := local.Snapshot()
	if m.RemoteCacheHits != 1 {
		t.Errorf("RemoteCacheHits = %d, want 1", m.RemoteCacheHits)
	}
	if m.SimsTotal != 0 {
		t.Errorf("adopting a remote result consumed %d sims, want 0", m.SimsTotal)
	}

	// The adopted payload is now served from the local cache too: the next
	// identical submit must not consult the peer again.
	j3, err := local.Submit(spec)
	if err != nil {
		t.Fatalf("repeat local submit: %v", err)
	}
	if v := j3.Snapshot(false); !v.Cached {
		t.Error("repeat submit missed the local cache")
	}
	if lookups != 1 {
		t.Errorf("repeat submit consulted the peer (lookups = %d)", lookups)
	}
}

func TestNodeIDNamespacesJobIDs(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4, NodeID: "s7", RunFunc: instantRun})
	defer svc.Drain(context.Background())
	j, err := svc.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !strings.HasPrefix(j.ID, "s7-j") {
		t.Errorf("job ID %q lacks the s7- node prefix", j.ID)
	}
	if got, err := svc.Get(j.ID); err != nil || got.ID != j.ID {
		t.Errorf("Get(%s) = (%v, %v)", j.ID, got, err)
	}
	if m := svc.Snapshot(); m.NodeID != "s7" {
		t.Errorf("metrics NodeID = %q, want s7", m.NodeID)
	}
}
