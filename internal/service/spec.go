// Package service implements the ecripsed yield-analysis daemon: an
// HTTP/JSON API over asynchronous yield-estimation jobs, backed by a bounded
// FIFO queue, a configurable worker pool with per-job panic recovery and
// graceful drain, a content-addressed LRU result cache, and an
// expvar-style metrics endpoint.
//
// Every job is deterministic for a fixed (spec, seed): the runner derives
// all randomness from the spec's seed and the estimators consume no entropy
// from cancellation checkpoints. That determinism is what makes the result
// cache sound — a cache hit is byte-identical to re-running the job.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"ecripse/internal/core"
	"ecripse/internal/device"
	"ecripse/internal/sram"
)

// Estimator names accepted by JobSpec.Estimator.
const (
	EstECRIPSE  = "ecripse"
	EstNaive    = "naive"
	EstSIS      = "sis"
	EstBlockade = "blockade"
	EstSubset   = "subset"
)

// JobSpec describes one yield-estimation job. The zero value of optional
// fields selects the documented defaults; Normalize makes the defaults
// explicit so that equivalent specs hash to the same cache key.
type JobSpec struct {
	// Cell optionally selects a custom 6T geometry (design-space
	// exploration). When nil, the paper's Table I cell at Vdd/TempK is used.
	Cell *sram.CellSpec `json:"cell,omitempty"`
	// Vdd is the supply voltage [V] (default the 16 nm HP nominal supply).
	// Ignored when Cell is set (the cell spec carries its own supply).
	Vdd float64 `json:"vdd,omitempty"`
	// TempK is the junction temperature [K] (0 = the device default, 300 K).
	// Ignored when Cell is set.
	TempK float64 `json:"temp_k,omitempty"`
	// Mode is the failure criterion: "read" (default), "write" or "hold".
	Mode string `json:"mode,omitempty"`
	// Estimator selects the method: "ecripse" (default), "naive", "sis",
	// "blockade" or "subset".
	Estimator string `json:"estimator,omitempty"`
	// RTN includes RTN-induced variability (estimators "ecripse" and
	// "naive" only).
	RTN bool `json:"rtn,omitempty"`
	// Alpha is the storage duty ratio for RTN jobs (default 0.5).
	Alpha float64 `json:"alpha,omitempty"`
	// Sweep runs a full duty-ratio sweep (Fig. 8 workload) over the given
	// alphas, sharing the boundary initialization and the classifier across
	// points; requires RTN and the ecripse estimator.
	Sweep []float64 `json:"sweep,omitempty"`
	// Seed is the random seed (default 1). Results are deterministic in it.
	Seed int64 `json:"seed,omitempty"`
	// N is the sample budget: importance samples for ecripse/sis, Monte
	// Carlo trials for naive/blockade, samples per level for subset.
	N int `json:"n,omitempty"`
	// M is the number of RTN draws per RDF sample (default 20; RTN only).
	M int `json:"m,omitempty"`
	// NoClassifier disables the SVM blockade of the ecripse estimator.
	NoClassifier bool `json:"no_classifier,omitempty"`
	// AdaptiveGrid enables the ecripse estimator's tiered-fidelity
	// indicator: coarse-grid margins answer most samples and only near-zero
	// margins escalate to the full grid. It changes which solver tier
	// produces each label, so — unlike Parallelism — it is part of the
	// cache key.
	AdaptiveGrid bool `json:"adaptive_grid,omitempty"`
	// MaxSims optionally bounds the transistor-level simulations; the job
	// stops cleanly at the budget and reports the partial series.
	MaxSims int64 `json:"max_sims,omitempty"`
	// Parallelism is the intra-job worker count for the ecripse estimator's
	// hot loops (0 = serial). It is an execution knob, not part of the
	// result: estimates are bit-identical at any level, so Key ignores it
	// and the service caps it so pool-level and intra-job parallelism
	// compose (see Config.MaxJobParallelism).
	Parallelism int `json:"parallelism,omitempty"`
	// WarmIn names the content key of a predecessor job whose exported warm
	// state (final particle cloud, trained classifier, trust radius) seeds
	// this job's engine, skipping boundary bisection and classifier warm-up.
	// The sweep planner sets it to chain adjacent grid points; it requires
	// estimator=ecripse and a 64-hex content key whose result must already be
	// resolvable when the job runs. Warm seeding changes the engine's
	// randomness consumption, so — like adaptive_grid — it is part of the
	// cache key: a warm point's key transitively encodes its whole
	// predecessor chain.
	WarmIn string `json:"warm_in,omitempty"`
	// WarmCloudOnly restricts the warm input to the particle cloud: the
	// predecessor's classifier and trust radius are dropped, and every label
	// is answered by the true simulator. The planner sets it when adjacent
	// points differ in operating point (Vdd/TempK) — the classifier is
	// cell-specific, but the neighboring cloud is still a far better stage-1
	// seed than a fresh boundary search.
	WarmCloudOnly bool `json:"warm_cloud_only,omitempty"`
	// ExportWarm includes the engine's final warm state in the result payload
	// so a successor job can WarmIn it. Part of the cache key (the payload
	// differs), which keeps plain point jobs and sweep-chained ones distinct.
	ExportWarm bool `json:"export_warm,omitempty"`
}

// Normalize applies the documented defaults in place and validates the
// spec. It must be called (once) before Key, so that equivalent specs are
// content-addressed identically.
func (s *JobSpec) Normalize() error {
	if s.Cell != nil {
		// Let the cell spec carry the operating point; zero fields take the
		// Table I values exactly as sram.NewCellFrom documents.
		if s.Vdd != 0 || s.TempK != 0 {
			return fmt.Errorf("spec: vdd/temp_k conflict with cell (set them inside the cell spec)")
		}
	} else if s.Vdd == 0 {
		s.Vdd = device.VddNominal
	}
	if s.Vdd < 0 || s.TempK < 0 {
		return fmt.Errorf("spec: negative vdd or temp_k")
	}
	// NaN/Inf would pass the range checks below (NaN compares false to
	// everything) and then blow up canonical marshaling in Key.
	if !finite(s.Vdd) || !finite(s.TempK) || !finite(s.Alpha) {
		return fmt.Errorf("spec: vdd, temp_k and alpha must be finite")
	}
	for _, a := range s.Sweep {
		if !finite(a) {
			return fmt.Errorf("spec: sweep duty ratios must be finite")
		}
	}
	switch s.Mode {
	case "":
		s.Mode = "read"
	case "read", "write", "hold":
	default:
		return fmt.Errorf("spec: unknown mode %q (want read, write or hold)", s.Mode)
	}
	switch s.Estimator {
	case "":
		s.Estimator = EstECRIPSE
	case EstECRIPSE, EstNaive, EstSIS, EstBlockade, EstSubset:
	default:
		return fmt.Errorf("spec: unknown estimator %q", s.Estimator)
	}
	if s.RTN && s.Estimator != EstECRIPSE && s.Estimator != EstNaive {
		return fmt.Errorf("spec: estimator %q is RDF-only (rtn unsupported)", s.Estimator)
	}
	if len(s.Sweep) > 0 {
		if !s.RTN || s.Estimator != EstECRIPSE {
			return fmt.Errorf("spec: sweep requires rtn=true and estimator=ecripse")
		}
		for _, a := range s.Sweep {
			if a < 0 || a > 1 {
				return fmt.Errorf("spec: sweep duty ratio %v outside [0,1]", a)
			}
		}
		s.Alpha = 0 // irrelevant with a sweep; zero it for canonical hashing
	}
	if s.RTN && len(s.Sweep) == 0 {
		if s.Alpha == 0 {
			s.Alpha = 0.5
		}
		if s.Alpha < 0 || s.Alpha > 1 {
			return fmt.Errorf("spec: duty ratio %v outside [0,1]", s.Alpha)
		}
	}
	if !s.RTN {
		s.Alpha = 0
		s.M = 0
	} else if s.M == 0 {
		s.M = 20
	}
	if s.M < 0 {
		return fmt.Errorf("spec: negative m")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.N < 0 {
		return fmt.Errorf("spec: negative n")
	}
	if s.N == 0 {
		switch s.Estimator {
		case EstECRIPSE, EstSIS:
			s.N = 20000
		case EstNaive, EstBlockade:
			s.N = 200000
		case EstSubset:
			s.N = 1000
		}
	}
	if s.MaxSims < 0 {
		return fmt.Errorf("spec: negative max_sims")
	}
	if s.NoClassifier && s.Estimator != EstECRIPSE {
		return fmt.Errorf("spec: no_classifier applies to estimator=ecripse only")
	}
	if s.AdaptiveGrid && s.Estimator != EstECRIPSE {
		return fmt.Errorf("spec: adaptive_grid applies to estimator=ecripse only")
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("spec: negative parallelism")
	}
	if s.Parallelism != 0 && s.Estimator != EstECRIPSE {
		return fmt.Errorf("spec: parallelism applies to estimator=ecripse only")
	}
	if s.WarmIn != "" {
		if s.Estimator != EstECRIPSE {
			return fmt.Errorf("spec: warm_in applies to estimator=ecripse only")
		}
		if !validKey(s.WarmIn) {
			return fmt.Errorf("spec: warm_in %q is not a 64-hex content key", s.WarmIn)
		}
	}
	if s.WarmCloudOnly && s.WarmIn == "" {
		return fmt.Errorf("spec: warm_cloud_only requires warm_in")
	}
	if s.ExportWarm && s.Estimator != EstECRIPSE {
		return fmt.Errorf("spec: export_warm applies to estimator=ecripse only")
	}
	return nil
}

// validKey reports whether k looks like a content key: 64 lowercase hex
// characters, as Key produces.
func validKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Key returns the content address of the (normalized) spec: the hex SHA-256
// of its canonical JSON encoding. Struct fields marshal in declaration
// order, so the encoding — and therefore the cache key — is deterministic.
// Parallelism is excluded (zeroed on the value receiver's copy): it only
// chooses how many goroutines compute the result, never what the result is,
// so specs differing only in it must share a cache entry.
func (s JobSpec) Key() string {
	s.Parallelism = 0
	b, err := json.Marshal(s)
	if err != nil {
		panic("service: spec marshal: " + err.Error()) // structurally impossible
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// buildCell constructs the cell the spec describes.
func (s JobSpec) buildCell() *sram.Cell {
	if s.Cell != nil {
		return sram.NewCellFrom(*s.Cell)
	}
	if s.TempK > 0 {
		return sram.NewCellAt(s.Vdd, s.TempK)
	}
	return sram.NewCell(s.Vdd)
}

// failureMode maps the spec's mode string onto the core enum.
func (s JobSpec) failureMode() core.FailureMode {
	switch s.Mode {
	case "write":
		return core.WriteFailure
	case "hold":
		return core.HoldFailure
	default:
		return core.ReadFailure
	}
}
