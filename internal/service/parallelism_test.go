package service

import (
	"context"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
)

// TestSpecParallelismExcludedFromKey: parallelism is an execution knob, not
// part of the work — specs differing only in it must share a content
// address, so a parallel submission hits the cache entry a serial run
// produced (and vice versa).
func TestSpecParallelismExcludedFromKey(t *testing.T) {
	a := JobSpec{Parallelism: 0}
	b := JobSpec{Parallelism: 8}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("parallelism leaked into the content address:\n%s\n%s", a.Key(), b.Key())
	}

	for _, bad := range []JobSpec{
		{Parallelism: -1},
		{Estimator: EstNaive, Parallelism: 4},
	} {
		bad := bad
		if err := bad.Normalize(); err == nil {
			t.Errorf("Normalize accepted invalid spec %+v", bad)
		}
	}
}

// TestSubmitCapsParallelism: the service clamps a job's requested intra-job
// workers to MaxJobParallelism so the pool and intra-job levels compose.
func TestSubmitCapsParallelism(t *testing.T) {
	var seen []int
	svc := New(Config{
		Workers: 1, QueueCapacity: 8, CacheCapacity: -1, MaxJobParallelism: 2,
		RunFunc: func(ctx context.Context, s JobSpec, c *montecarlo.Counter) (*RunResult, error) {
			seen = append(seen, s.Parallelism)
			return &RunResult{}, nil
		},
	})
	defer svc.Drain(context.Background())

	for _, req := range []int{0, 1, 2, 64} {
		j, err := svc.Submit(JobSpec{Parallelism: req})
		if err != nil {
			t.Fatalf("submit parallelism=%d: %v", req, err)
		}
		waitDone(t, j, 5*time.Second)
	}
	want := []int{0, 1, 2, 2}
	if len(seen) != len(want) {
		t.Fatalf("ran %d jobs, want %d", len(seen), len(want))
	}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("job %d ran with parallelism %d, want %d", i, seen[i], w)
		}
	}
}

// TestMaxJobParallelismDefault: the zero config derives the cap from
// GOMAXPROCS/Workers, never below 1; a negative config disables intra-job
// parallelism.
func TestMaxJobParallelismDefault(t *testing.T) {
	c := Config{Workers: 10000}
	c.fill()
	if c.MaxJobParallelism != 1 {
		t.Fatalf("cap = %d with saturating workers, want 1", c.MaxJobParallelism)
	}
	c = Config{Workers: 1, MaxJobParallelism: -1}
	c.fill()
	if c.MaxJobParallelism != 1 {
		t.Fatalf("negative cap resolved to %d, want 1", c.MaxJobParallelism)
	}
}
