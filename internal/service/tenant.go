package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrUnauthorized is returned by Tenants.Authenticate for a missing or
// unknown API key; the HTTP layer maps it onto 401.
var ErrUnauthorized = errors.New("service: missing or unknown API key")

// RateLimitError reports a submit rejected by a tenant's token bucket or
// quota. The HTTP layer answers 429 with a Retry-After header so sweep
// drivers back off instead of hot-looping.
type RateLimitError struct {
	Tenant     string
	Reason     string        // "rate" or "quota"
	RetryAfter time.Duration // suggested back-off
}

// Error implements error.
func (e *RateLimitError) Error() string {
	return fmt.Sprintf("service: tenant %s %s limit exceeded (retry after %s)", e.Tenant, e.Reason, e.RetryAfter)
}

// quotaRetryAfter is the Retry-After suggested on quota (as opposed to rate)
// rejections. Quotas do not replenish on their own — an operator has to
// raise them — so the back-off is deliberately long.
const quotaRetryAfter = time.Hour

// TenantConfig is one entry of the API-keys file: an opaque bearer key
// mapped to a named tenant with its fairness knobs.
type TenantConfig struct {
	// Key is the bearer token clients present (Authorization: Bearer <key>
	// or X-API-Key: <key>). Required, unique.
	Key string `json:"key"`
	// Name identifies the tenant in metrics, logs and usage records.
	// Required, unique.
	Name string `json:"name"`
	// RatePerSec is the token-bucket refill rate in submits per second
	// (0 disables rate limiting for this tenant).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (defaults to max(1, ceil(RatePerSec))).
	Burst int `json:"burst,omitempty"`
	// QuotaJobs caps the tenant's accepted submits over the service
	// lifetime, 0 = unlimited. Usage survives restarts via the store.
	QuotaJobs int64 `json:"quota_jobs,omitempty"`
	// QuotaSims caps the transistor-level simulations attributed to the
	// tenant's completed jobs, 0 = unlimited. Checked at submit against
	// usage accumulated so far (a running job's sims land when it ends).
	QuotaSims int64 `json:"quota_sims,omitempty"`
}

// TenantUsage is a tenant's accumulated consumption, persisted through the
// store so quotas survive restarts.
type TenantUsage struct {
	Jobs int64 `json:"jobs"` // accepted submits
	Sims int64 `json:"sims"` // simulations consumed by finished jobs
}

// Tenant is the live state of one API key: its config, token bucket and
// usage counters. All mutation goes through Tenants.
type Tenant struct {
	cfg TenantConfig

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	usage    TenantUsage
	rejected int64 // 429s handed to this tenant
}

// Name returns the tenant's identity. Nil-safe: the open-access nil tenant
// has the empty name.
func (t *Tenant) Name() string {
	if t == nil {
		return ""
	}
	return t.cfg.Name
}

// Usage returns the tenant's accumulated consumption.
func (t *Tenant) Usage() TenantUsage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.usage
}

// acquire refills the bucket to now, then takes n tokens and charges n jobs
// — or rejects without consuming anything. Quota is checked before rate so
// an exhausted tenant gets the long Retry-After even when its bucket is dry.
func (t *Tenant) acquire(n int, now time.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if q := t.cfg.QuotaJobs; q > 0 && t.usage.Jobs+int64(n) > q {
		t.rejected++
		return &RateLimitError{Tenant: t.cfg.Name, Reason: "quota", RetryAfter: quotaRetryAfter}
	}
	if q := t.cfg.QuotaSims; q > 0 && t.usage.Sims >= q {
		t.rejected++
		return &RateLimitError{Tenant: t.cfg.Name, Reason: "quota", RetryAfter: quotaRetryAfter}
	}
	if t.cfg.RatePerSec > 0 {
		burst := float64(t.cfg.Burst)
		t.tokens = math.Min(burst, t.tokens+now.Sub(t.last).Seconds()*t.cfg.RatePerSec)
		t.last = now
		if t.tokens < float64(n) {
			t.rejected++
			wait := (float64(n) - t.tokens) / t.cfg.RatePerSec
			return &RateLimitError{
				Tenant:     t.cfg.Name,
				Reason:     "rate",
				RetryAfter: time.Duration(math.Ceil(wait)) * time.Second,
			}
		}
		t.tokens -= float64(n)
	}
	t.usage.Jobs += int64(n)
	return nil
}

// Tenants is the API-key registry: authentication, per-tenant token-bucket
// rate limiting and quota accounting. A nil *Tenants means open access —
// every request passes with no tenant attached (the single-user default).
type Tenants struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	names  []string // sorted, for stable iteration

	// now is the clock (tests substitute it).
	now func() time.Time

	// onUsage observes every usage change so the owner can persist it
	// (the service wires it to Store.AppendTenant). May be nil.
	onUsage func(name string, u TenantUsage)
}

// NewTenants builds a registry from explicit configs.
func NewTenants(cfgs []TenantConfig) (*Tenants, error) {
	ts := &Tenants{
		byKey:  make(map[string]*Tenant, len(cfgs)),
		byName: make(map[string]*Tenant, len(cfgs)),
		now:    time.Now,
	}
	for i, cfg := range cfgs {
		if cfg.Key == "" || cfg.Name == "" {
			return nil, fmt.Errorf("service: tenant %d: key and name are required", i)
		}
		if cfg.RatePerSec < 0 || cfg.Burst < 0 || cfg.QuotaJobs < 0 || cfg.QuotaSims < 0 {
			return nil, fmt.Errorf("service: tenant %q: negative limit", cfg.Name)
		}
		if cfg.RatePerSec > 0 && cfg.Burst == 0 {
			cfg.Burst = int(math.Max(1, math.Ceil(cfg.RatePerSec)))
		}
		if _, dup := ts.byKey[cfg.Key]; dup {
			return nil, fmt.Errorf("service: duplicate API key (tenant %q)", cfg.Name)
		}
		if _, dup := ts.byName[cfg.Name]; dup {
			return nil, fmt.Errorf("service: duplicate tenant name %q", cfg.Name)
		}
		t := &Tenant{cfg: cfg, tokens: float64(cfg.Burst), last: ts.now()}
		ts.byKey[cfg.Key] = t
		ts.byName[cfg.Name] = t
		ts.names = append(ts.names, cfg.Name)
	}
	sort.Strings(ts.names)
	return ts, nil
}

// LoadTenants reads an API-keys file: a JSON array of TenantConfig entries.
func LoadTenants(path string) (*Tenants, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: read API keys: %w", err)
	}
	var cfgs []TenantConfig
	if err := json.Unmarshal(data, &cfgs); err != nil {
		return nil, fmt.Errorf("service: parse API keys %s: %w", path, err)
	}
	return NewTenants(cfgs)
}

// OnUsage registers the persistence observer for usage changes. Call before
// serving traffic.
func (ts *Tenants) OnUsage(fn func(name string, u TenantUsage)) {
	if ts != nil {
		ts.onUsage = fn
	}
}

// apiKey extracts the presented key: Authorization: Bearer <key> wins,
// X-API-Key is the fallback.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return r.Header.Get("X-API-Key")
}

// Authenticate resolves the request's API key to its tenant. A nil registry
// admits everything with a nil tenant (open access).
func (ts *Tenants) Authenticate(r *http.Request) (*Tenant, error) {
	if ts == nil {
		return nil, nil
	}
	t, ok := ts.byKey[apiKey(r)]
	if !ok {
		return nil, ErrUnauthorized
	}
	return t, nil
}

// Acquire charges n submits against the tenant's rate limit and job quota,
// persisting the new usage on success. A nil registry or nil tenant always
// admits. All n submits are admitted or none are — a batch is atomic with
// respect to fairness.
func (ts *Tenants) Acquire(t *Tenant, n int) error {
	if ts == nil || t == nil {
		return nil
	}
	if err := t.acquire(n, ts.now()); err != nil {
		return err
	}
	ts.persist(t)
	return nil
}

// AddSims attributes finished-job simulations to the named tenant and
// persists the new usage. Unknown names are ignored (the tenant may have
// been removed from the keys file between runs).
func (ts *Tenants) AddSims(name string, sims int64) {
	if ts == nil || sims <= 0 {
		return
	}
	t, ok := ts.byName[name]
	if !ok {
		return
	}
	t.mu.Lock()
	t.usage.Sims += sims
	t.mu.Unlock()
	ts.persist(t)
}

// KeyFor returns the API key of the named tenant. The cluster router uses
// it to re-authenticate redispatched jobs as their original tenant when a
// shard dies — journal records carry tenant names, never keys. Nil registry
// or unknown name → ("", false).
func (ts *Tenants) KeyFor(name string) (string, bool) {
	if ts == nil {
		return "", false
	}
	t, ok := ts.byName[name]
	if !ok {
		return "", false
	}
	return t.cfg.Key, true
}

// SetUsage restores a tenant's recovered usage (boot-time replay). Unknown
// names are ignored.
func (ts *Tenants) SetUsage(name string, u TenantUsage) {
	if ts == nil {
		return
	}
	t, ok := ts.byName[name]
	if !ok {
		return
	}
	t.mu.Lock()
	t.usage = u
	t.mu.Unlock()
}

func (ts *Tenants) persist(t *Tenant) {
	if ts.onUsage == nil {
		return
	}
	t.mu.Lock()
	u := t.usage
	t.mu.Unlock()
	ts.onUsage(t.cfg.Name, u)
}

// TenantView is one tenant's state as reported by /metrics (the key itself
// is never exposed).
type TenantView struct {
	Jobs      int64 `json:"jobs"`
	Sims      int64 `json:"sims"`
	Rejected  int64 `json:"rejected"`
	QuotaJobs int64 `json:"quota_jobs,omitempty"`
	QuotaSims int64 `json:"quota_sims,omitempty"`
}

// Views snapshots every tenant, keyed by name. Nil registry → nil map.
func (ts *Tenants) Views() map[string]TenantView {
	if ts == nil {
		return nil
	}
	out := make(map[string]TenantView, len(ts.names))
	for _, name := range ts.names {
		t := ts.byName[name]
		t.mu.Lock()
		out[name] = TenantView{
			Jobs:      t.usage.Jobs,
			Sims:      t.usage.Sims,
			Rejected:  t.rejected,
			QuotaJobs: t.cfg.QuotaJobs,
			QuotaSims: t.cfg.QuotaSims,
		}
		t.mu.Unlock()
	}
	return out
}

// Tenant context plumbing: the HTTP entry point authenticates once and
// handlers read the tenant back out of the request context.

type tenantKey struct{}

// WithTenant attaches the authenticated tenant to a context.
func WithTenant(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, tenantKey{}, t)
}

// TenantFrom returns the context's tenant, or nil (open access).
func TenantFrom(ctx context.Context) *Tenant {
	t, _ := ctx.Value(tenantKey{}).(*Tenant)
	return t
}
