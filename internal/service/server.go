package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ecripse/internal/obsv"
)

// ForwardedHeader marks a request proxied by a cluster peer or router. The
// entry point already authenticated and rate-limited the client, so the
// receiving shard skips re-charging the tenant (and the cluster layer uses
// it to stop forwarding loops). Spoofing it from outside the cluster only
// bypasses rate accounting, never authentication — forwarded requests still
// need a valid API key when the shard enforces one.
const ForwardedHeader = "X-Ecripse-Forwarded"

// isForwarded reports whether a peer already charged this request's tenant.
func isForwarded(r *http.Request) bool { return r.Header.Get(ForwardedHeader) != "" }

// Server exposes a Service over HTTP/JSON:
//
//	POST   /v1/jobs             submit a JobSpec        → 202 job view (200 on a cache hit)
//	POST   /v1/jobs:batch       submit [JobSpec...]     → 200 [{status, job|error}...]
//	GET    /v1/jobs             list jobs (no results)  → 200 [view...]
//	GET    /v1/jobs/{id}        status + result         → 200 view
//	GET    /v1/jobs/{id}/events progress stream (SSE)   → text/event-stream
//	GET    /v1/jobs/{id}/trace  span timeline           → 200 {id, state, spans}
//	DELETE /v1/jobs/{id}        cancel                  → 202 view (409 view if already terminal)
//	POST   /v1/sweeps           submit a SweepSpec      → 202 sweep view (400 over the point limit)
//	GET    /v1/sweeps           list sweeps             → 200 [view...]
//	GET    /v1/sweeps/{id}      status, points, result  → 200 view
//	GET    /v1/sweeps/{id}/events per-point SSE         → text/event-stream
//	GET    /v1/sweeps/{id}/trace  reassembled trace     → 200 {id, state, trace_id, spans}
//	DELETE /v1/sweeps/{id}      cancel                  → 202 view (409 if already terminal)
//	GET    /v1/cache/{key}      result by content key   → 200 payload (peer cache lookups)
//	GET    /metrics             expvar-style JSON (?format=prometheus for text exposition)
//	GET    /healthz             liveness (503 while draining)
//
// With Tenants configured, /v1/* requests (except /v1/cache/, whose sha-256
// keys are capabilities — intra-cluster peers present no API key) require a
// valid API key and submits are charged against the tenant's token bucket
// and quotas; rejections answer 429 with a Retry-After header. Submit
// bodies beyond MaxBodyBytes answer 413.
type Server struct {
	svc *Service
	mux *http.ServeMux

	// EventInterval is the progress-event period of /events streams.
	EventInterval time.Duration

	// MaxBodyBytes caps a submit body (single or batch); oversized specs
	// answer 413 instead of buffering unbounded attacker-controlled JSON.
	// Zero selects DefaultMaxBodyBytes; negative disables the cap.
	MaxBodyBytes int64

	// MaxBatchJobs caps the spec count of one POST /v1/jobs:batch request
	// (default DefaultMaxBatchJobs).
	MaxBatchJobs int

	// Tenants enables API-key auth and fairness enforcement. Nil (the
	// default) keeps the service open, exactly as before.
	Tenants *Tenants
}

// DefaultMaxBodyBytes bounds one submit body. Specs are small (a custom
// cell plus a sweep grid is well under 16 KiB); 1 MiB leaves two orders of
// magnitude of headroom while still refusing junk uploads.
const DefaultMaxBodyBytes = 1 << 20

// DefaultMaxBatchJobs bounds one batch submission.
const DefaultMaxBatchJobs = 1024

// NewServer wires the routes for the service.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), EventInterval: 250 * time.Millisecond}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/jobs:batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleSweepTrace)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheLookup)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler: authenticate /v1/* (when tenants are
// configured), then dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Tenants != nil && strings.HasPrefix(r.URL.Path, "/v1/") &&
		!strings.HasPrefix(r.URL.Path, "/v1/cache/") {
		t, err := s.Tenants.Authenticate(r)
		if err != nil {
			writeError(w, http.StatusUnauthorized, err.Error())
			return
		}
		r = r.WithContext(WithTenant(r.Context(), t))
	}
	// Propagated distributed-trace context (W3C traceparent). Invalid or
	// absent headers leave the zero TraceContext, and submits mint fresh IDs.
	if tc, ok := obsv.ParseTraceparent(r.Header.Get(obsv.TraceparentHeader)); ok {
		r = r.WithContext(obsv.WithTraceContext(r.Context(), tc))
	}
	s.mux.ServeHTTP(w, r)
}

// limitBody applies the configured request-body cap.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	limit := s.MaxBodyBytes
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	if limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
}

// submitErrStatus maps a decode or Submit error onto its response, setting
// Retry-After on the back-pressure statuses (full queue, rate limit, quota)
// so sweep drivers back off instead of hot-looping.
func submitErrStatus(w http.ResponseWriter, err error) int {
	setRetry := func(v string) {
		if w != nil {
			w.Header().Set("Retry-After", v)
		}
	}
	var rle *RateLimitError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &rle):
		setRetry(strconv.Itoa(int(rle.RetryAfter.Seconds())))
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQueueFull):
		setRetry("1")
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("spec exceeds the %d-byte body limit", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "decode spec: "+err.Error())
		return
	}
	tenant := TenantFrom(r.Context())
	if !isForwarded(r) {
		if err := s.Tenants.Acquire(tenant, 1); err != nil {
			writeError(w, submitErrStatus(w, err), err.Error())
			return
		}
	}
	j, err := s.svc.SubmitTraced(tenant.Name(), spec, obsv.TraceContextFrom(r.Context()))
	switch {
	case err != nil:
		writeError(w, submitErrStatus(w, err), err.Error())
	case j.State() == StateDone:
		writeJSON(w, http.StatusOK, j.Snapshot(true)) // cache hit: answered inline
	default:
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot(false))
	}
}

// BatchItem is one element of a batch-submit response, aligned by index
// with the request's spec array. Status carries the HTTP code the spec
// would have received as a single submit.
type BatchItem struct {
	Status int    `json:"status"`
	Job    *View  `json:"job,omitempty"`
	Error  string `json:"error,omitempty"`
}

// handleBatch submits an array of specs in one request, amortizing HTTP
// overhead for externally driven sweeps. Fairness is atomic: the tenant is
// charged len(specs) up front and a rejection refuses the whole batch with
// 429 + Retry-After. Per-spec failures (bad spec, full queue) surface in
// the per-item status without failing the rest.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var specs []JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds the %d-byte body limit", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "decode batch: "+err.Error())
		return
	}
	maxJobs := s.MaxBatchJobs
	if maxJobs <= 0 {
		maxJobs = DefaultMaxBatchJobs
	}
	if len(specs) == 0 || len(specs) > maxJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch must carry 1..%d specs (got %d)", maxJobs, len(specs)))
		return
	}
	tenant := TenantFrom(r.Context())
	if !isForwarded(r) {
		if err := s.Tenants.Acquire(tenant, len(specs)); err != nil {
			writeError(w, submitErrStatus(w, err), err.Error())
			return
		}
	}
	items := make([]BatchItem, len(specs))
	tc := obsv.TraceContextFrom(r.Context())
	for i, spec := range specs {
		j, err := s.svc.SubmitTraced(tenant.Name(), spec, tc)
		if err != nil {
			items[i] = BatchItem{Status: submitErrStatus(nil, err), Error: err.Error()}
			continue
		}
		view := j.Snapshot(false)
		status := http.StatusAccepted
		if view.State == StateDone {
			status = http.StatusOK
		}
		items[i] = BatchItem{Status: status, Job: &view}
	}
	writeJSON(w, http.StatusOK, items)
}

// handleSweepSubmit accepts a SweepSpec, plans its grid, and starts the
// sweep controller. Fairness is atomic like a batch: the tenant is charged
// one token per grid point up front. Oversized grids (ErrTooManyPoints) and
// any other spec defect answer 400.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("sweep spec exceeds the %d-byte body limit", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "decode sweep spec: "+err.Error())
		return
	}
	// Normalize before charging so the token count reflects the real grid
	// (and junk grids cost nothing). SubmitSweepAs re-normalizes the already-
	// canonical spec, which is idempotent.
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := TenantFrom(r.Context())
	if !isForwarded(r) {
		if err := s.Tenants.Acquire(tenant, spec.NumPoints()); err != nil {
			writeError(w, submitErrStatus(w, err), err.Error())
			return
		}
	}
	sw, err := s.svc.SubmitSweepTraced(tenant.Name(), spec, obsv.TraceContextFrom(r.Context()))
	if err != nil {
		writeError(w, submitErrStatus(w, err), err.Error())
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.ID)
	writeJSON(w, http.StatusAccepted, sw.Snapshot(false))
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	sweeps := s.svc.Sweeps()
	views := make([]SweepView, 0, len(sweeps))
	for _, sw := range sweeps {
		views = append(views, sw.Snapshot(false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw, err := s.svc.GetSweep(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, sw.Snapshot(true))
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw, changed, err := s.svc.CancelSweep(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if !changed {
		writeJSON(w, http.StatusConflict, sw.Snapshot(false))
		return
	}
	writeJSON(w, http.StatusAccepted, sw.Snapshot(false))
}

// handleSweepEvents streams sweep progress as SSE: buffered "point" events
// as each grid point changes state, periodic "progress" summaries, and a
// final "done" with the full sweep view (aggregate included).
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, err := s.svc.GetSweep(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		flusher.Flush()
	}
	type progress struct {
		ID         string `json:"id"`
		State      State  `json:"state"`
		NumPoints  int    `json:"num_points"`
		PointsDone int    `json:"points_done"`
	}
	var cursor uint64
	drain := func() {
		events, dropped, next := sw.DiagSince(cursor)
		cursor = next
		if dropped > 0 {
			emit("dropped", map[string]uint64{"missed": dropped})
		}
		for _, ev := range events {
			// Dispatch by ring kind: per-point progress streams as "point",
			// the terminal transition as "sweep" (always ahead of "done").
			emit(ev.Kind, ev)
		}
	}
	ticker := time.NewTicker(s.EventInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sw.Done():
			drain()
			emit("done", sw.Snapshot(true))
			return
		case <-ticker.C:
			drain()
			emit("progress", progress{ID: sw.ID, State: sw.State(),
				NumPoints: len(sw.points), PointsDone: sw.PointsDone()})
		}
	}
}

// handleSweepTrace serves the sweep's reassembled distributed trace: the
// controller's spans with every point job's timeline grafted under its
// point span, all sharing one trace ID.
func (s *Server) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	sw, err := s.svc.GetSweep(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	traceID, spans := s.svc.AssembleSweepTrace(sw)
	if spans == nil {
		spans = []obsv.SpanView{}
	}
	writeJSON(w, http.StatusOK, struct {
		ID      string          `json:"id"`
		State   State           `json:"state"`
		TraceID string          `json:"trace_id,omitempty"`
		Spans   []obsv.SpanView `json:"spans"`
	}{ID: sw.ID, State: sw.State(), TraceID: traceID, Spans: spans})
}

// handleCacheLookup answers a peer shard's read-through probe: the raw
// result payload for a content key, or 404. Keys are sha-256 content
// addresses — knowing one means knowing the full spec, so the endpoint
// leaks nothing an API key would protect.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	payload, ok := s.svc.CachedResult(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, "key not cached")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.svc.Jobs()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.Snapshot(false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, changed, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if !changed {
		// The job already reached a terminal state: report the conflict
		// (and the state it ended in) instead of pretending to cancel it.
		writeJSON(w, http.StatusConflict, j.Snapshot(false))
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot(false))
}

// handleEvents streams job progress as server-sent events: one "progress"
// event per tick (state and simulation count) and a final "done" event with
// the full job view when the job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		flusher.Flush()
	}

	type progress struct {
		ID    string `json:"id"`
		State State  `json:"state"`
		Sims  int64  `json:"sims"`
	}
	// drain forwards buffered convergence diagnostics since the cursor. A
	// consumer that fell behind the ring first learns how many events it
	// missed, then gets the survivors in order.
	var cursor uint64
	drain := func() {
		events, dropped, next := j.DiagSince(cursor)
		cursor = next
		if dropped > 0 {
			emit("dropped", map[string]uint64{"missed": dropped})
		}
		for _, ev := range events {
			// Statistical-health verdicts get their own SSE event name so
			// dashboards can subscribe to violations without parsing every
			// convergence diagnostic.
			if ev.Kind == "health" {
				emit("health", ev)
				continue
			}
			emit("diag", ev)
		}
	}
	ticker := time.NewTicker(s.EventInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			drain()
			emit("done", j.Snapshot(true))
			return
		case <-ticker.C:
			drain()
			emit("progress", progress{ID: j.ID, State: j.State(), Sims: j.Sims()})
		}
	}
}

// handleTrace serves the job's span timeline: the live trace for jobs run by
// this process, or the persisted timeline of a recovered job.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	tp, _ := decodeTrace(j.TracePayload())
	if tp.Spans == nil {
		tp.Spans = []obsv.SpanView{}
	}
	writeJSON(w, http.StatusOK, struct {
		ID      string          `json:"id"`
		State   State           `json:"state"`
		TraceID string          `json:"trace_id,omitempty"`
		Spans   []obsv.SpanView `json:"spans"`
	}{ID: j.ID, State: j.State(), TraceID: tp.TraceID, Spans: tp.Spans})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.svc.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	build := ReadBuildInfo()
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": s.svc.Uptime().Seconds(),
		"go_version":     build.GoVersion,
	}
	if build.Revision != "" {
		body["revision"] = build.Revision
	}
	if s.svc.Draining() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
