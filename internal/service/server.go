package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Server exposes a Service over HTTP/JSON:
//
//	POST   /v1/jobs             submit a JobSpec        → 202 job view (200 on a cache hit)
//	GET    /v1/jobs             list jobs (no results)  → 200 [view...]
//	GET    /v1/jobs/{id}        status + result         → 200 view
//	GET    /v1/jobs/{id}/events progress stream (SSE)   → text/event-stream
//	GET    /v1/jobs/{id}/trace  span timeline           → 200 {id, state, spans}
//	DELETE /v1/jobs/{id}        cancel                  → 202 view (409 view if already terminal)
//	GET    /metrics             expvar-style JSON (?format=prometheus for text exposition)
//	GET    /healthz             liveness (503 while draining)
type Server struct {
	svc *Service
	mux *http.ServeMux

	// EventInterval is the progress-event period of /events streams.
	EventInterval time.Duration
}

// NewServer wires the routes for the service.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), EventInterval: 250 * time.Millisecond}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: "+err.Error())
		return
	}
	j, err := s.svc.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	case j.State() == StateDone:
		writeJSON(w, http.StatusOK, j.Snapshot(true)) // cache hit: answered inline
	default:
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot(false))
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.svc.Jobs()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.Snapshot(false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, changed, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if !changed {
		// The job already reached a terminal state: report the conflict
		// (and the state it ended in) instead of pretending to cancel it.
		writeJSON(w, http.StatusConflict, j.Snapshot(false))
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot(false))
}

// handleEvents streams job progress as server-sent events: one "progress"
// event per tick (state and simulation count) and a final "done" event with
// the full job view when the job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		flusher.Flush()
	}

	type progress struct {
		ID    string `json:"id"`
		State State  `json:"state"`
		Sims  int64  `json:"sims"`
	}
	// drain forwards buffered convergence diagnostics since the cursor. A
	// consumer that fell behind the ring first learns how many events it
	// missed, then gets the survivors in order.
	var cursor uint64
	drain := func() {
		events, dropped, next := j.DiagSince(cursor)
		cursor = next
		if dropped > 0 {
			emit("dropped", map[string]uint64{"missed": dropped})
		}
		for _, ev := range events {
			emit("diag", ev)
		}
	}
	ticker := time.NewTicker(s.EventInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			drain()
			emit("done", j.Snapshot(true))
			return
		case <-ticker.C:
			drain()
			emit("progress", progress{ID: j.ID, State: j.State(), Sims: j.Sims()})
		}
	}
}

// handleTrace serves the job's span timeline: the live trace for jobs run by
// this process, or the persisted timeline of a recovered job.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	spans := j.TracePayload()
	if spans == nil {
		spans = json.RawMessage("[]")
	}
	writeJSON(w, http.StatusOK, struct {
		ID    string          `json:"id"`
		State State           `json:"state"`
		Spans json.RawMessage `json:"spans"`
	}{ID: j.ID, State: j.State(), Spans: spans})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.svc.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	build := ReadBuildInfo()
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": s.svc.Uptime().Seconds(),
		"go_version":     build.GoVersion,
	}
	if build.Revision != "" {
		body["revision"] = build.Revision
	}
	if s.svc.Draining() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
