package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecripse/internal/montecarlo"
	"ecripse/internal/obsv"
	"ecripse/internal/sram"
)

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("service: no such job")

// Config sizes the service's three layers and selects its persistence.
type Config struct {
	Workers       int // worker pool size (default 4)
	QueueCapacity int // bounded FIFO depth (default 64)
	CacheCapacity int // LRU result-cache entries (negative disables; default 256)

	// MaxJobParallelism caps the per-job intra-estimator worker count
	// requested via JobSpec.Parallelism, so pool-level concurrency (Workers
	// jobs at once) and intra-job parallelism compose instead of
	// oversubscribing the machine. 0 selects max(1, GOMAXPROCS/Workers);
	// negative disables intra-job parallelism entirely (every job runs
	// serial). Results are unaffected either way — estimates are
	// bit-identical at any parallelism level.
	MaxJobParallelism int

	// Store persists job events and results across restarts. Nil selects
	// the in-memory no-op store (nothing survives the process).
	Store Store

	// NodeID namespaces job IDs with a shard name ("s1" → "s1-j000001") so
	// IDs minted by several shards never collide behind a cluster router.
	// Empty keeps the single-node "j000001" form. The prefix never enters
	// the spec hash — routing must not perturb cache keys.
	NodeID string

	// Tenants is the multi-tenant control plane: API-key authentication,
	// token-bucket rate limits and quota accounting enforced at submit by
	// the HTTP layer. Nil means open access (the single-user default).
	// Recovered usage is replayed into it and changes are persisted through
	// Store.AppendTenant.
	Tenants *Tenants

	// RemoteCache is the cluster read-through hook: consulted on a local
	// cache miss before a job is enqueued, typically wired to a fan-out
	// lookup across peer shards (GET /v1/cache/{key}). A hit is answered
	// like a local one — done, flagged cached, zero new simulations — and
	// the payload is adopted into the local cache. Determinism makes this
	// sound: any node's payload for a key is byte-identical.
	RemoteCache func(key string) (json.RawMessage, bool)

	// RunFunc substitutes the job runner; nil selects the real estimator
	// runner. It exists so tests — including out-of-package crash-recovery
	// tests — can make scheduling deterministic and cheap.
	RunFunc func(context.Context, JobSpec, *montecarlo.Counter) (*RunResult, error)

	// Logger receives structured service logs (job transitions, persistence
	// failures, recovery warnings). Nil selects slog.Default().
	Logger *slog.Logger

	// EventBuffer is the per-job diagnostic-event ring capacity for SSE
	// consumers (default 256). A consumer that falls further behind loses
	// the oldest events and is told how many it missed.
	EventBuffer int

	// TraceMaxSpans bounds each job's and sweep's persisted span count
	// (default obsv.DefaultMaxSpans). Overflowing spans are dropped and
	// counted in a final `truncated` attribute instead of growing the
	// journal without bound.
	TraceMaxSpans int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxJobParallelism == 0 {
		if c.MaxJobParallelism = runtime.GOMAXPROCS(0) / c.Workers; c.MaxJobParallelism < 1 {
			c.MaxJobParallelism = 1
		}
	}
	if c.MaxJobParallelism < 0 {
		c.MaxJobParallelism = 1
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 256
	}
	if c.Store == nil {
		c.Store = nopStore{}
	}
	if c.RunFunc == nil {
		c.RunFunc = runSpec
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.TraceMaxSpans <= 0 {
		c.TraceMaxSpans = obsv.DefaultMaxSpans
	}
}

// telemetry bundles the service's fixed-bucket histograms. All four are
// allocation-free atomic observers; the solver histogram is additionally
// registered as the process-wide sram solve observer. healthViolations
// counts watchdog rule firings by rule name (the
// ecripsed_health_violations_total families).
type telemetry struct {
	jobDuration *obsv.Histogram // run wall time, seconds
	queueWait   *obsv.Histogram // queued → running, seconds
	indicator   *obsv.Histogram // one true-indicator evaluation, seconds
	rootIters   *obsv.Histogram // Illinois iterations per root solve

	healthMu         sync.Mutex
	healthViolations map[string]int64
}

// healthViolation counts one watchdog rule firing.
func (t *telemetry) healthViolation(rule string) {
	t.healthMu.Lock()
	t.healthViolations[rule]++
	t.healthMu.Unlock()
}

// healthSnapshot copies the per-rule counters (nil when none fired).
func (t *telemetry) healthSnapshot() map[string]int64 {
	t.healthMu.Lock()
	defer t.healthMu.Unlock()
	if len(t.healthViolations) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.healthViolations))
	for k, v := range t.healthViolations {
		out[k] = v
	}
	return out
}

func newTelemetry() *telemetry {
	return &telemetry{
		jobDuration: obsv.NewHistogram("ecripsed_job_duration_seconds",
			"Wall time of a job from start of execution to its terminal state.",
			obsv.ExpBuckets(0.01, 2, 16)),
		queueWait: obsv.NewHistogram("ecripsed_queue_wait_seconds",
			"Time a job spent queued before a worker picked it up.",
			obsv.ExpBuckets(0.001, 4, 10)),
		indicator: obsv.NewHistogram("ecripsed_indicator_seconds",
			"Wall time of one true-indicator evaluation (one transistor-level simulation).",
			obsv.ExpBuckets(1e-5, 2, 16)),
		rootIters: obsv.NewHistogram("ecripsed_root_solve_iterations",
			"Illinois iterations per half-cell root solve (per-curve average).",
			obsv.LinearBuckets(4, 4, 12)),
		healthViolations: make(map[string]int64),
	}
}

// Service owns the job store, the bounded queue, the worker pool and the
// result cache. Create one with New, submit with Submit, and shut it down
// with Drain.
type Service struct {
	cfg   Config
	queue *queue
	pool  *pool
	cache *cache
	st    Store

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	replayed   int          // jobs re-enqueued or re-answered at boot
	appendErrs atomic.Int64 // store appends that failed (logged, not fatal)
	remoteHits atomic.Int64 // submits answered via the cluster read-through

	// runFn executes a job spec; tests substitute it to make scheduling
	// behavior (backpressure, drain, races) deterministic and cheap.
	runFn func(context.Context, JobSpec, *montecarlo.Counter) (*RunResult, error)

	log     *slog.Logger
	tel     *telemetry
	started time.Time

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []*Job // submission order, for listing
	nextID int64

	// Sweep bookkeeping: controllers run as goroutines tracked by sweepWG so
	// Drain can wait them out after the worker pool settles.
	sweepMu     sync.Mutex
	sweeps      map[string]*Sweep
	sweepOrder  []*Sweep
	nextSweepID int64
	sweepWG     sync.WaitGroup

	sweepPointsDone atomic.Int64 // grid points driven to completion
	sweepWarmPoints atomic.Int64 // points seeded from a predecessor
	sweepSimsSaved  atomic.Int64 // estimated simulations avoided by warm starts
}

// New builds a service, replays whatever state its store recovered from
// disk, and starts the worker pool. Recovered terminal jobs are restored
// as-is (done results re-attached from the persisted result set); jobs
// that were queued or running when the previous process died are
// re-enqueued under their original IDs — their specs are deterministic, so
// the re-run reproduces the lost result — or answered straight from the
// restored cache when an identical spec already completed.
func New(cfg Config) *Service {
	cfg.fill()
	rec := cfg.Store.Recover()
	pending := 0
	for _, rj := range rec.Jobs {
		if !rj.State.Terminal() {
			pending++
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg: cfg,
		// The queue admits every replayed job on top of the configured
		// capacity, so a crash under full load can never refuse its own
		// backlog at boot.
		queue:      newQueue(cfg.QueueCapacity + pending),
		cache:      newCache(cfg.CacheCapacity),
		st:         cfg.Store,
		baseCtx:    ctx,
		baseCancel: cancel,
		runFn:      cfg.RunFunc,
		log:        cfg.Logger,
		tel:        newTelemetry(),
		started:    time.Now(),
		jobs:       make(map[string]*Job),
		sweeps:     make(map[string]*Sweep),
	}
	// Route per-curve solver tallies into the iterations histogram. The
	// registration is process-global, like TotalSolveTelemetry; the newest
	// service wins, which only matters to tests creating several.
	sram.RegisterSolveObserver(s.tel.rootIters)
	// Replay recovered tenant usage, then persist future changes. The
	// replay precedes OnUsage so boot does not re-journal what it just read.
	for name, u := range rec.Tenants {
		cfg.Tenants.SetUsage(name, u)
	}
	cfg.Tenants.OnUsage(func(name string, u TenantUsage) {
		if err := s.st.AppendTenant(name, u); err != nil {
			s.appendErrs.Add(1)
			s.log.Error("persist tenant usage failed", "tenant", name, "err", err)
		}
	})
	for key, payload := range rec.Results {
		s.cache.put(key, payload, costFromPayload(payload))
	}
	for _, rj := range rec.Jobs {
		s.restore(rj, rec.Results)
	}
	// Terminal sweeps restore before the pool starts; interrupted ones
	// restart their controllers after it, so their point jobs have workers.
	var resume []*Sweep
	for _, rs := range rec.Sweeps {
		if sw := s.restoreSweepRec(rs); sw != nil {
			resume = append(resume, sw)
		}
	}
	s.pool = startPool(cfg.Workers, s.queue, s.execute)
	for _, sw := range resume {
		s.sweepWG.Add(1)
		go s.runSweep(sw)
	}
	return s
}

// restoreSweepRec re-creates one recovered sweep. Terminal sweeps come back
// as-is (their persisted aggregate re-attached); a sweep that was running at
// crash time returns non-nil and the caller restarts its controller once the
// pool is up — completed points answer from the restored cache, queued
// recovered point jobs are adopted by key, and only the remainder re-runs.
func (s *Service) restoreSweepRec(rs RecoveredSweep) *Sweep {
	// IDs are "sw000001" or, under Config.NodeID, "s1-sw000001"; the counter
	// always follows the last "sw".
	var n int64
	num := rs.ID
	if i := strings.LastIndex(num, "sw"); i >= 0 {
		num = num[i:]
	}
	if _, err := fmt.Sscanf(num, "sw%d", &n); err == nil && n > s.nextSweepID {
		s.nextSweepID = n
	}
	var spec SweepSpec
	if err := json.Unmarshal(rs.Spec, &spec); err != nil {
		s.log.Warn("recovery: dropping sweep with undecodable spec", "sweep", rs.ID, "err", err)
		return nil
	}
	if err := spec.Normalize(); err != nil {
		s.log.Warn("recovery: dropping sweep with invalid spec", "sweep", rs.ID, "err", err)
		return nil
	}
	points, err := spec.Points()
	if err != nil {
		s.log.Warn("recovery: dropping sweep with unplannable grid", "sweep", rs.ID, "err", err)
		return nil
	}
	if rs.State.Terminal() {
		s.trackSweep(restoreSweep(rs, spec, points))
		return nil
	}
	s.replayed++
	sw := newSweep(s.baseCtx, rs.ID, spec, rs.Key, rs.Tenant, points, s.cfg.EventBuffer)
	sw.created = rs.Created
	sw.onState = s.onSweepState
	s.trackSweep(sw)
	return sw
}

// restore re-creates one recovered job. Replay never appends a fresh
// submit record — the store already holds one — but re-run jobs do append
// their new transitions, so a second crash replays from the furthest state.
func (s *Service) restore(rj RecoveredJob, results map[string]json.RawMessage) {
	// IDs are "j000001" or, under Config.NodeID, "s1-j000001"; the counter
	// always follows the last 'j'.
	var n int64
	num := rj.ID
	if i := strings.LastIndexByte(num, 'j'); i >= 0 {
		num = num[i:]
	}
	if _, err := fmt.Sscanf(num, "j%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
	var spec JobSpec
	if err := json.Unmarshal(rj.Spec, &spec); err != nil {
		s.log.Warn("recovery: dropping job with undecodable spec", "job", rj.ID, "err", err)
		return
	}
	// Re-apply the parallelism cap: the journal may predate a config change.
	// Harmless for correctness (the cache key ignores the field and results
	// are parallelism-independent), purely a resource bound.
	if spec.Parallelism > s.cfg.MaxJobParallelism {
		spec.Parallelism = s.cfg.MaxJobParallelism
	}
	if rj.State.Terminal() {
		var res json.RawMessage
		if rj.State == StateDone {
			res = results[rj.Key]
		}
		s.track(restoreJob(rj, spec, res))
		return
	}
	s.replayed++
	j := newJob(s.baseCtx, rj.ID, spec, rj.Key, s.cfg.EventBuffer)
	j.Tenant = rj.Tenant
	j.onState = s.onJobState
	s.track(j)
	if payload, ok := s.cache.get(rj.Key); ok {
		j.finishCached(payload)
		return
	}
	if err := s.queue.tryEnqueue(j); err != nil {
		// Structurally impossible (capacity covers the backlog), but a
		// lost job must still surface as failed rather than queued forever.
		j.finish(StateFailed, nil, "recovery enqueue: "+err.Error())
	}
}

// onJobState persists every committed job transition, logs it with
// structured fields, and feeds the latency histograms: the queued→running
// edge observes queue wait, the terminal edge observes run duration.
func (s *Service) onJobState(j *Job, state State, errMsg string, at time.Time) {
	created, started := j.timestamps()
	switch {
	case state == StateRunning:
		s.tel.queueWait.Observe(at.Sub(created).Seconds())
		s.log.Debug("job state", "job", j.ID, "state", state)
	case state.Terminal():
		if !started.IsZero() {
			s.tel.jobDuration.Observe(at.Sub(started).Seconds())
		}
		// Attribute the simulations to the submitting tenant; the counter
		// has stopped by the time a terminal state commits.
		if j.Tenant != "" {
			s.cfg.Tenants.AddSims(j.Tenant, j.Sims())
		}
		if errMsg != "" {
			s.log.Info("job finished", "job", j.ID, "state", state, "sims", j.Sims(), "err", errMsg)
		} else {
			s.log.Info("job finished", "job", j.ID, "state", state, "sims", j.Sims())
		}
	}
	if err := s.st.AppendState(j.ID, state, errMsg, at); err != nil {
		s.appendErrs.Add(1)
		s.log.Error("persist state failed", "job", j.ID, "state", state, "err", err)
	}
}

// Submit validates and enqueues a job. A spec whose content address is
// cached is answered immediately: the returned job is already done, flagged
// cached, and cost zero additional simulations. Backpressure and drain are
// reported as ErrQueueFull and ErrDraining.
func (s *Service) Submit(spec JobSpec) (*Job, error) { return s.SubmitAs("", spec) }

// SubmitAs is Submit with the job attributed to a tenant (the authenticated
// API client); its finished simulations are charged against the tenant's
// quota. Rate limiting itself happens at the HTTP layer, before this call.
func (s *Service) SubmitAs(tenant string, spec JobSpec) (*Job, error) {
	return s.SubmitTraced(tenant, spec, obsv.TraceContext{})
}

// SubmitTraced is SubmitAs with a propagated distributed trace context: when
// tc carries a valid trace ID (extracted from an inbound traceparent header,
// or a sweep controller threading its own ID through its point jobs), the
// job's trace joins that distributed trace instead of minting a fresh ID —
// which is what lets the sweep-trace endpoint reassemble one tree with
// consistent IDs across router, shards, and engine spans.
func (s *Service) SubmitTraced(tenant string, spec JobSpec, tc obsv.TraceContext) (*Job, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	// Cap intra-job parallelism so Workers concurrent jobs cannot
	// oversubscribe the machine. Done after Normalize and before Key — but
	// Key ignores the field anyway, so capped and uncapped submissions of
	// the same work share one cache entry.
	if spec.Parallelism > s.cfg.MaxJobParallelism {
		spec.Parallelism = s.cfg.MaxJobParallelism
	}
	key := spec.Key()

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	s.mu.Unlock()
	if s.cfg.NodeID != "" {
		id = s.cfg.NodeID + "-" + id
	}

	raw, err := json.Marshal(spec) // normalized: the canonical persisted form
	if err != nil {
		return nil, fmt.Errorf("service: marshal spec: %w", err)
	}

	if payload, ok := s.cache.get(key); ok {
		j := newJob(s.baseCtx, id, spec, key, s.cfg.EventBuffer)
		j.Tenant = tenant
		j.onState = s.onJobState
		s.adoptTrace(j, tc)
		j.trace.Add("cache.hit", -1, j.created, time.Now())
		s.persistSubmit(j, raw, true)
		j.finishCached(payload)
		s.track(j)
		return j, nil
	}

	// Cluster read-through: before spending a worker, ask the peers whether
	// any of them already computed this key. Determinism makes an adopted
	// payload byte-identical to a local run, so it is cached and persisted
	// exactly like one.
	if s.cfg.RemoteCache != nil {
		if payload, ok := s.cfg.RemoteCache(key); ok {
			s.cache.put(key, payload, costFromPayload(payload))
			if perr := s.st.AppendResult(key, payload); perr != nil {
				s.appendErrs.Add(1)
				s.log.Error("persist remote result failed", "key", key, "err", perr)
			}
			j := newJob(s.baseCtx, id, spec, key, s.cfg.EventBuffer)
			j.Tenant = tenant
			j.onState = s.onJobState
			s.adoptTrace(j, tc)
			j.trace.Add("cache.remote_hit", -1, j.created, time.Now())
			s.remoteHits.Add(1)
			s.persistSubmit(j, raw, true)
			j.finishCached(payload)
			s.track(j)
			return j, nil
		}
	}

	if s.draining.Load() {
		return nil, ErrDraining
	}
	j := newJob(s.baseCtx, id, spec, key, s.cfg.EventBuffer)
	j.Tenant = tenant
	j.onState = s.onJobState
	s.adoptTrace(j, tc)
	// The submit record goes to the journal before the job can reach a
	// worker, so replay never sees a transition for an unknown job. A
	// rejected enqueue is voided with a drop record; a crash between the
	// two merely re-runs a job the client saw refused — harmless, because
	// specs are deterministic.
	s.persistSubmit(j, raw, false)
	s.track(j)
	if err := s.queue.tryEnqueue(j); err != nil {
		s.remove(j)
		if derr := s.st.AppendDrop(j.ID); derr != nil {
			s.appendErrs.Add(1)
			s.log.Error("persist drop failed", "job", j.ID, "err", derr)
		}
		return nil, err
	}
	return j, nil
}

// SubmitSweep validates a sweep spec, plans its grid, and starts the
// controller that drives the point jobs. The returned sweep is already
// tracked and running.
func (s *Service) SubmitSweep(spec SweepSpec) (*Sweep, error) { return s.SubmitSweepAs("", spec) }

// SubmitSweepAs is SubmitSweep attributed to a tenant. Fairness for the
// whole grid (one token per point) is charged at the HTTP layer before this
// call, exactly like batch submits.
func (s *Service) SubmitSweepAs(tenant string, spec SweepSpec) (*Sweep, error) {
	return s.SubmitSweepTraced(tenant, spec, obsv.TraceContext{})
}

// SubmitSweepTraced is SubmitSweepAs joining a propagated distributed trace:
// the sweep (and through it every point job) adopts tc's trace ID, and tc's
// span ID — the router's dispatch span — is recorded on the root sweep span
// so the router-side reassembly can graft this shard's tree in place.
func (s *Service) SubmitSweepTraced(tenant string, spec SweepSpec, tc obsv.TraceContext) (*Sweep, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	// Cap intra-point parallelism once, in the planner's base, so every
	// point job inherits it (Submit re-caps defensively; keys are unaffected).
	if spec.Base.Parallelism > s.cfg.MaxJobParallelism {
		spec.Base.Parallelism = s.cfg.MaxJobParallelism
	}
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	key := spec.Key()

	s.sweepMu.Lock()
	s.nextSweepID++
	id := fmt.Sprintf("sw%06d", s.nextSweepID)
	s.sweepMu.Unlock()
	if s.cfg.NodeID != "" {
		id = s.cfg.NodeID + "-" + id
	}

	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("service: marshal sweep spec: %w", err)
	}
	sw := newSweep(s.baseCtx, id, spec, key, tenant, points, s.cfg.EventBuffer)
	sw.trace.SetMaxSpans(s.cfg.TraceMaxSpans)
	if len(tc.TraceID) == 32 {
		sw.trace.SetID(tc.TraceID)
		sw.parentSpan = tc.SpanID
	}
	sw.onState = s.onSweepState
	if perr := s.st.AppendSweep(id, raw, key, tenant, sw.created); perr != nil {
		s.appendErrs.Add(1)
		s.log.Error("persist sweep submit failed", "sweep", id, "err", perr)
	}
	s.trackSweep(sw)
	s.sweepWG.Add(1)
	go s.runSweep(sw)
	return sw, nil
}

// onSweepState persists every committed sweep transition. The aggregate
// result rides the terminal record: it embeds nondeterministic job IDs, so
// it is journal-state, never a content-addressed cache entry.
func (s *Service) onSweepState(sw *Sweep, state State, errMsg string, result json.RawMessage, at time.Time) {
	if state.Terminal() {
		if errMsg != "" {
			s.log.Info("sweep finished", "sweep", sw.ID, "state", state, "err", errMsg)
		} else {
			s.log.Info("sweep finished", "sweep", sw.ID, "state", state, "points", len(sw.points))
		}
	}
	if err := s.st.AppendSweepState(sw.ID, state, errMsg, result, at); err != nil {
		s.appendErrs.Add(1)
		s.log.Error("persist sweep state failed", "sweep", sw.ID, "state", state, "err", err)
	}
}

func (s *Service) trackSweep(sw *Sweep) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	s.sweeps[sw.ID] = sw
	s.sweepOrder = append(s.sweepOrder, sw)
}

// GetSweep returns a sweep by ID.
func (s *Service) GetSweep(id string) (*Sweep, error) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, ErrSweepNotFound
	}
	return sw, nil
}

// Sweeps returns every known sweep in submission order.
func (s *Service) Sweeps() []*Sweep {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return append([]*Sweep(nil), s.sweepOrder...)
}

// CancelSweep requests cancellation of a sweep; false means it was already
// terminal (409 at the HTTP layer).
func (s *Service) CancelSweep(id string) (*Sweep, bool, error) {
	sw, err := s.GetSweep(id)
	if err != nil {
		return nil, false, err
	}
	changed := sw.Cancel()
	if changed {
		// Tear down the in-flight point jobs directly instead of waiting for
		// the controller to observe the cancellation: queued points flip
		// terminal at once, closing their per-point SSE streams immediately.
		for _, jobID := range sw.pointJobIDs() {
			if j, jerr := s.Get(jobID); jerr == nil {
				j.Cancel()
			}
		}
	}
	return sw, changed, nil
}

// adoptTrace applies the configured span cap to a freshly minted job's trace
// and joins it to a propagated distributed trace context, replacing the
// job's own trace ID. A zero/invalid context leaves the minted ID in place.
func (s *Service) adoptTrace(j *Job, tc obsv.TraceContext) {
	j.trace.SetMaxSpans(s.cfg.TraceMaxSpans)
	if len(tc.TraceID) == 32 {
		j.trace.SetID(tc.TraceID)
	}
}

// persistSubmit appends the job's submit record, logging (not failing) on
// store errors: the service prefers availability over durability.
func (s *Service) persistSubmit(j *Job, raw json.RawMessage, cached bool) {
	if err := s.st.AppendSubmit(j.ID, raw, j.Key, j.Tenant, cached, j.created); err != nil {
		s.appendErrs.Add(1)
		s.log.Error("persist submit failed", "job", j.ID, "err", err)
	}
}

func (s *Service) track(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
}

func (s *Service) remove(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.ID)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// CachedResult peeks the result cache for a content key without touching
// recency or the hit/miss counters — it serves peer lookups (GET
// /v1/cache/{key}), which must not skew the local cache telemetry.
func (s *Service) CachedResult(key string) (json.RawMessage, bool) {
	return s.cache.peek(key)
}

// Get returns a job by ID.
func (s *Service) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns every known job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Cancel requests cancellation of a job by ID. The boolean reports whether
// the request had any effect: false means the job was already in a
// terminal state (the HTTP layer maps that onto 409 Conflict).
func (s *Service) Cancel(id string) (*Job, bool, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, false, err
	}
	return j, j.Cancel(), nil
}

// Draining reports whether the service has stopped accepting jobs.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: intake stops (submits return
// ErrDraining), queued and running jobs are allowed to finish, and the
// call returns when the pool is idle or ctx fires — in which case every
// job still in flight is cancelled and the error reports the abort.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()
	if s.pool.wait(ctx) {
		// Workers are idle; sweep controllers can only be finishing their
		// bookkeeping or failing a pending submit with ErrDraining ("resume
		// by resubmitting — completed points answer from cache").
		done := make(chan struct{})
		go func() { s.sweepWG.Wait(); close(done) }()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.baseCancel()
			<-done
			return fmt.Errorf("service: drain aborted: %w", ctx.Err())
		}
	}
	// Deadline hit: hard-cancel whatever is still running and give the
	// workers a moment to unwind at their next checkpoint.
	s.baseCancel()
	s.pool.wait(context.Background())
	s.sweepWG.Wait() // controllers observe the base cancel and finish
	return fmt.Errorf("service: drain aborted: %w", ctx.Err())
}

// execute runs one dequeued job on a pool worker. Panics in estimator code
// are contained here: the job fails, the worker survives.
func (s *Service) execute(j *Job) {
	if !j.markRunning() {
		return // cancelled while queued
	}
	j.addQueueWaitSpan()
	defer func() {
		if r := recover(); r != nil {
			j.finish(StateFailed, nil, fmt.Sprintf("panic: %v", r))
			s.persistTrace(j)
		}
	}()

	// Thread the telemetry carriers into the runner: the span trace, the
	// diagnostic-event emitter (feeding the job's SSE ring), the health
	// monitor (violations stream to SSE as `health` events and count into
	// /metrics as they fire; the deterministic report lands in the result),
	// and the service histograms the estimator observes into. None of them
	// affect the computed result.
	ctx := obsv.WithTrace(j.ctx, j.trace)
	ctx = obsv.WithEmitter(ctx, j.publish)
	ctx = obsv.WithHealth(ctx, obsv.NewHealthMonitor(obsv.HealthConfig{}, func(v obsv.HealthViolation) {
		j.publish("health", v)
		s.tel.healthViolation(v.Rule)
	}))
	ctx = withRunHooks(ctx, runHooks{
		indicatorHist: s.tel.indicator,
		// Warm-chained points resolve their predecessor's payload from the
		// local cache, falling back to the cluster read-through (point i-1
		// may have computed on another shard).
		warmResolver: func(key string) (json.RawMessage, bool) {
			if p, ok := s.cache.peek(key); ok {
				return p, true
			}
			if s.cfg.RemoteCache != nil {
				return s.cfg.RemoteCache(key)
			}
			return nil, false
		},
	})
	runCtx, runSpan := obsv.StartSpan(ctx, "run", obsv.S("job", j.ID))

	res, err := s.runFn(runCtx, j.Spec, j.counter)
	runSpan.SetAttr(obsv.I("sims", j.Sims()))
	runSpan.End()

	var payload json.RawMessage
	if res != nil {
		b, merr := json.Marshal(res)
		if merr != nil {
			j.finish(StateFailed, nil, "marshal result: "+merr.Error())
			s.persistTrace(j)
			return
		}
		payload = b
	}
	if err != nil {
		// Cancelled (client DELETE, drain abort, or deadline): keep the
		// partial result for inspection but never cache it. Partial
		// payloads are deliberately not persisted either — a restored
		// canceled job carries its error but no payload.
		j.finish(StateCanceled, payload, err.Error())
		s.persistTrace(j)
		return
	}
	_, pspan := obsv.StartSpan(ctx, "persist")
	s.cache.put(j.Key, payload, res.Cost.Total)
	// Result before the done record: a crash between the two replays the
	// job as running and re-derives the identical payload.
	if perr := s.st.AppendResult(j.Key, payload); perr != nil {
		s.appendErrs.Add(1)
		s.log.Error("persist result failed", "job", j.ID, "err", perr)
	}
	pspan.End()
	j.finish(StateDone, payload, "")
	s.persistTrace(j)
}

// persistTrace appends the job's finished span timeline. Traces ride the
// journal keyed by job ID — wall-clock data never enters the content-
// addressed result set, so cache soundness is untouched.
func (s *Service) persistTrace(j *Job) {
	payload := j.TracePayload()
	if payload == nil {
		return
	}
	if err := s.st.AppendTrace(j.ID, payload); err != nil {
		s.appendErrs.Add(1)
		s.log.Error("persist trace failed", "job", j.ID, "err", err)
	}
}

// Metrics is the expvar-style snapshot served at /metrics.
type Metrics struct {
	Jobs          map[State]int `json:"jobs"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Workers       int           `json:"workers"`
	WorkersBusy   int64         `json:"workers_busy"`
	CacheHits     int64         `json:"cache_hits"`
	CacheMisses   int64         `json:"cache_misses"`
	CacheSize     int           `json:"cache_size"`
	CacheHitRate  float64       `json:"cache_hit_rate"`
	// CacheEvictions / CacheEvictedCost expose the cost-weighted eviction
	// policy: evicted-cost is the total simulations the service would have
	// to re-spend if every evicted entry were requested again.
	CacheEvictions   int64 `json:"cache_evictions"`
	CacheEvictedCost int64 `json:"cache_evicted_cost"`
	// RemoteCacheHits counts submits answered by the cluster read-through
	// (a peer shard's cache) instead of local work.
	RemoteCacheHits int64 `json:"remote_cache_hits,omitempty"`
	SimsTotal       int64 `json:"sims_total"`
	// Solver effort underneath the indicator calls, process-wide: how many
	// half-cell root solves ran and how many Illinois iterations they took.
	SolverRootSolves int64 `json:"solver_root_solves"`
	SolverIters      int64 `json:"solver_iters"`
	// Lane occupancy of the batched indicator kernel, process-wide: slots
	// issued by the lockstep solver and slots carrying a live lane.
	LaneSlots    int64 `json:"lane_slots"`
	LaneOccupied int64 `json:"lane_occupied"`
	// Pipelined stage-2 execution, process-wide: barrier windows completed
	// by the double-buffered driver, wall-clock seconds spent generating the
	// next batch, stalling on an unfinished generation, and settling
	// barriers, plus the derived share of generation hidden behind
	// settlement. Observational (timings live here, never in results).
	PipelineBatches       int64   `json:"pipeline_batches"`
	PipelineGenSeconds    float64 `json:"pipeline_gen_seconds"`
	PipelineStallSeconds  float64 `json:"pipeline_stall_seconds"`
	PipelineSettleSeconds float64 `json:"pipeline_settle_seconds"`
	PipelineOverlapFrac   float64 `json:"pipeline_overlap_frac"`
	// HealthViolations counts statistical-health watchdog rule firings by
	// rule name since process start (deterministic and wall-clock rules
	// alike — this is the alerting surface, not the cached verdict).
	HealthViolations map[string]int64 `json:"health_violations,omitempty"`
	Draining         bool             `json:"draining"`
	// UptimeSeconds and Build identify the serving process.
	UptimeSeconds float64   `json:"uptime_seconds"`
	Build         BuildInfo `json:"build"`
	// ReplayedJobs counts jobs re-enqueued (or re-answered from the
	// restored cache) during boot recovery.
	ReplayedJobs int `json:"replayed_jobs,omitempty"`
	// Store carries the persistence counters; absent without a data dir.
	Store *StoreStats `json:"store,omitempty"`
	// Sweeps counts known sweeps by state; the point/warm/saved counters
	// aggregate over every completed sweep: points driven to completion,
	// points seeded from a predecessor, and the estimated simulations those
	// warm starts avoided.
	Sweeps          map[State]int `json:"sweeps,omitempty"`
	SweepPointsDone int64         `json:"sweep_points_done,omitempty"`
	SweepWarmPoints int64         `json:"sweep_warm_points,omitempty"`
	SweepSimsSaved  int64         `json:"sweep_sims_saved,omitempty"`
	// NodeID is the shard name when the service runs as a cluster member.
	NodeID string `json:"node_id,omitempty"`
	// Tenants is the per-tenant usage snapshot; absent with auth off.
	Tenants map[string]TenantView `json:"tenants,omitempty"`
}

// BuildInfo identifies the running binary: toolchain version and, when the
// binary was built inside a VCS checkout, the revision stamped by the go
// tool.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// ReadBuildInfo reports the process build identity (cached after first use).
func ReadBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, kv := range bi.Settings {
				switch kv.Key {
				case "vcs.revision":
					buildInfo.Revision = kv.Value
				case "vcs.time":
					buildInfo.VCSTime = kv.Value
				case "vcs.modified":
					buildInfo.Modified = kv.Value == "true"
				}
			}
		}
	})
	return buildInfo
}

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.started) }

// Snapshot assembles the current metrics.
func (s *Service) Snapshot() Metrics {
	m := Metrics{
		Jobs:          map[State]int{},
		QueueDepth:    s.queue.depth(),
		QueueCapacity: s.queue.capacity(),
		Workers:       s.pool.workers,
		WorkersBusy:   s.pool.busy.Load(),
		Draining:      s.draining.Load(),
		ReplayedJobs:  s.replayed,
		UptimeSeconds: s.Uptime().Seconds(),
		Build:         ReadBuildInfo(),
		NodeID:        s.cfg.NodeID,
		Tenants:       s.cfg.Tenants.Views(),
	}
	m.RemoteCacheHits = s.remoteHits.Load()
	if _, nop := s.st.(nopStore); !nop {
		st := s.st.Stats()
		st.AppendErrors = s.appendErrs.Load()
		m.Store = &st
	}
	cs := s.cache.stats()
	m.CacheHits, m.CacheMisses, m.CacheSize = cs.hits, cs.misses, cs.size
	m.CacheEvictions, m.CacheEvictedCost = cs.evictions, cs.evictedCost
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(lookups)
	}
	m.HealthViolations = s.tel.healthSnapshot()
	m.SolverRootSolves, m.SolverIters = sram.TotalSolveTelemetry()
	m.LaneSlots, m.LaneOccupied = sram.TotalLaneTelemetry()
	ps := montecarlo.TotalPipelineStats()
	m.PipelineBatches = ps.Batches
	m.PipelineGenSeconds = float64(ps.GenNS) / 1e9
	m.PipelineStallSeconds = float64(ps.StallNS) / 1e9
	m.PipelineSettleSeconds = float64(ps.SettleNS) / 1e9
	m.PipelineOverlapFrac = ps.OverlapFraction()
	for _, j := range s.Jobs() {
		m.Jobs[j.State()]++
		m.SimsTotal += j.Sims()
	}
	if sweeps := s.Sweeps(); len(sweeps) > 0 {
		m.Sweeps = map[State]int{}
		for _, sw := range sweeps {
			m.Sweeps[sw.State()]++
		}
	}
	m.SweepPointsDone = s.sweepPointsDone.Load()
	m.SweepWarmPoints = s.sweepWarmPoints.Load()
	m.SweepSimsSaved = s.sweepSimsSaved.Load()
	return m
}
