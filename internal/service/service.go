package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ecripse/internal/montecarlo"
)

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("service: no such job")

// Config sizes the service's three layers.
type Config struct {
	Workers       int // worker pool size (default 4)
	QueueCapacity int // bounded FIFO depth (default 64)
	CacheCapacity int // LRU result-cache entries (default 256; negative disables)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 256
	}
}

// Service owns the job store, the bounded queue, the worker pool and the
// result cache. Create one with New, submit with Submit, and shut it down
// with Drain.
type Service struct {
	cfg   Config
	queue *queue
	pool  *pool
	cache *cache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	// runFn executes a job spec; tests substitute it to make scheduling
	// behavior (backpressure, drain, races) deterministic and cheap.
	runFn func(context.Context, JobSpec, *montecarlo.Counter) (*RunResult, error)

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []*Job // submission order, for listing
	nextID int64
}

// New builds a service and starts its worker pool.
func New(cfg Config) *Service {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		queue:      newQueue(cfg.QueueCapacity),
		cache:      newCache(cfg.CacheCapacity),
		baseCtx:    ctx,
		baseCancel: cancel,
		runFn:      runSpec,
		jobs:       make(map[string]*Job),
	}
	s.pool = startPool(cfg.Workers, s.queue, s.execute)
	return s
}

// Submit validates and enqueues a job. A spec whose content address is
// cached is answered immediately: the returned job is already done, flagged
// cached, and cost zero additional simulations. Backpressure and drain are
// reported as ErrQueueFull and ErrDraining.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	key := spec.Key()

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	s.mu.Unlock()

	if payload, ok := s.cache.get(key); ok {
		j := newJob(s.baseCtx, id, spec, key)
		j.finishCached(payload)
		s.store(j)
		return j, nil
	}

	if s.draining.Load() {
		return nil, ErrDraining
	}
	j := newJob(s.baseCtx, id, spec, key)
	s.store(j)
	if err := s.queue.tryEnqueue(j); err != nil {
		s.remove(j)
		return nil, err
	}
	return j, nil
}

func (s *Service) store(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
}

func (s *Service) remove(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.ID)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Get returns a job by ID.
func (s *Service) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns every known job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Cancel requests cancellation of a job by ID.
func (s *Service) Cancel(id string) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	j.Cancel()
	return j, nil
}

// Draining reports whether the service has stopped accepting jobs.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: intake stops (submits return
// ErrDraining), queued and running jobs are allowed to finish, and the
// call returns when the pool is idle or ctx fires — in which case every
// job still in flight is cancelled and the error reports the abort.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()
	if s.pool.wait(ctx) {
		return nil
	}
	// Deadline hit: hard-cancel whatever is still running and give the
	// workers a moment to unwind at their next checkpoint.
	s.baseCancel()
	s.pool.wait(context.Background())
	return fmt.Errorf("service: drain aborted: %w", ctx.Err())
}

// execute runs one dequeued job on a pool worker. Panics in estimator code
// are contained here: the job fails, the worker survives.
func (s *Service) execute(j *Job) {
	if !j.markRunning() {
		return // cancelled while queued
	}
	defer func() {
		if r := recover(); r != nil {
			j.finish(StateFailed, nil, fmt.Sprintf("panic: %v", r))
		}
	}()

	res, err := s.runFn(j.ctx, j.Spec, j.counter)

	var payload json.RawMessage
	if res != nil {
		b, merr := json.Marshal(res)
		if merr != nil {
			j.finish(StateFailed, nil, "marshal result: "+merr.Error())
			return
		}
		payload = b
	}
	if err != nil {
		// Cancelled (client DELETE, drain abort, or deadline): keep the
		// partial result for inspection but never cache it.
		j.finish(StateCanceled, payload, err.Error())
		return
	}
	s.cache.put(j.Key, payload)
	j.finish(StateDone, payload, "")
}

// Metrics is the expvar-style snapshot served at /metrics.
type Metrics struct {
	Jobs          map[State]int `json:"jobs"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Workers       int           `json:"workers"`
	WorkersBusy   int64         `json:"workers_busy"`
	CacheHits     int64         `json:"cache_hits"`
	CacheMisses   int64         `json:"cache_misses"`
	CacheSize     int           `json:"cache_size"`
	CacheHitRate  float64       `json:"cache_hit_rate"`
	SimsTotal     int64         `json:"sims_total"`
	Draining      bool          `json:"draining"`
}

// Snapshot assembles the current metrics.
func (s *Service) Snapshot() Metrics {
	m := Metrics{
		Jobs:          map[State]int{},
		QueueDepth:    s.queue.depth(),
		QueueCapacity: s.queue.capacity(),
		Workers:       s.pool.workers,
		WorkersBusy:   s.pool.busy.Load(),
		Draining:      s.draining.Load(),
	}
	m.CacheHits, m.CacheMisses, m.CacheSize = s.cache.stats()
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(lookups)
	}
	for _, j := range s.Jobs() {
		m.Jobs[j.State()]++
		m.SimsTotal += j.Sims()
	}
	return m
}
