package pfilter

import (
	"math/rand"
	"reflect"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
)

// shellFails is a deterministic, concurrency-safe indicator: failure outside
// radius 3.
func shellFails(x linalg.Vector) bool { return x.Norm() > 3 }

// TestBoundaryInitParWorkerInvariance: the boundary set must be identical
// for any worker count, and must actually sit on the r=3 shell.
func TestBoundaryInitParWorkerInvariance(t *testing.T) {
	want := BoundaryInitPar(9, 6, 64, 8, 0.05, shellFails, 1)
	if len(want) == 0 {
		t.Fatal("no boundary points found")
	}
	for _, p := range want {
		if r := p.Norm(); r < 2.5 || r > 3.6 {
			t.Fatalf("boundary point at radius %v, want ≈3", r)
		}
	}
	for _, workers := range []int{2, 4, 16} {
		got := BoundaryInitPar(9, 6, 64, 8, 0.05, shellFails, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("boundary set differs at workers=%d (%d vs %d points)", workers, len(got), len(want))
		}
	}
}

// newTestEnsemble builds a small deterministic ensemble around the r=3 shell.
func newTestEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	initial := BoundaryInitPar(2, 6, 32, 8, 0.05, shellFails, 1)
	if len(initial) == 0 {
		t.Fatal("no initial particles")
	}
	return New(rng, Options{Particles: 20, Filters: 2, KernelStd: 0.3}, initial)
}

// TestStepParWorkerInvariance: one StepPar round — particles, records and
// the candidate pool — must be bit-identical across worker counts.
func TestStepParWorkerInvariance(t *testing.T) {
	weight := func(rng *rand.Rand, idx int, x linalg.Vector) float64 {
		if !shellFails(x) {
			return 0
		}
		return randx.StdNormalPDF(x)
	}
	type snapshot struct {
		particles []linalg.Vector
		poolX     []linalg.Vector
		poolW     []float64
		records   []StepRecord
	}
	run := func(workers int) snapshot {
		e := newTestEnsemble(t)
		var recs []StepRecord
		for round := 0; round < 3; round++ {
			recs = e.StepPar(int64(100+round), weight, nil, workers)
		}
		return snapshot{e.Particles(), e.poolX, e.poolW, recs}
	}
	want := run(1)
	if len(want.poolX) == 0 {
		t.Fatal("no pooled candidates after 3 rounds")
	}
	for _, workers := range []int{2, 5, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("StepPar state differs at workers=%d", workers)
		}
	}
}

// TestStepParFlushAfterMeasurement: flush runs after every candidate is
// scored and before resampling mutates the filters.
func TestStepParFlushAfterMeasurement(t *testing.T) {
	e := newTestEnsemble(t)
	total := e.NumFilters() * 20
	scored := make([]bool, total)
	weight := func(rng *rand.Rand, idx int, x linalg.Vector) float64 {
		scored[idx] = true
		return 1
	}
	called := false
	e.StepPar(7, weight, func(n int) {
		called = true
		if n != total {
			t.Fatalf("flush reported %d candidates, want %d", n, total)
		}
		for idx, s := range scored {
			if !s {
				t.Fatalf("flush before candidate %d was scored", idx)
			}
		}
	}, 4)
	if !called {
		t.Fatal("flush not called")
	}
}
