package pfilter

import (
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
)

// TestWarmRoundTrip: exporting an ensemble's cloud and rebuilding via Warm
// must recover the exact per-filter grouping — the property the sweep
// planner's cross-point seeding depends on — without consuming randomness.
func TestWarmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	initial := make([]linalg.Vector, 24)
	for i := range initial {
		// Two well-separated lobes so k-means produces two filters.
		c := 4.0
		if i%2 == 1 {
			c = -4.0
		}
		initial[i] = randx.NormalVector(rng, 6).Scale(0.2)
		initial[i][0] += c
	}
	opts := Options{Particles: 10, Filters: 2, KernelStd: 0.3}
	cold := New(rng, opts, initial)
	cloud := cold.Particles()

	warm := Warm(opts, cloud)
	if warm.NumFilters() != cold.NumFilters() {
		t.Fatalf("filters = %d, want %d", warm.NumFilters(), cold.NumFilters())
	}
	for fi := 0; fi < cold.NumFilters(); fi++ {
		cf, wf := cold.FilterParticles(fi), warm.FilterParticles(fi)
		if len(cf) != len(wf) {
			t.Fatalf("filter %d: %d particles, want %d", fi, len(wf), len(cf))
		}
		for i := range cf {
			for d := range cf[i] {
				if cf[i][d] != wf[i][d] {
					t.Fatalf("filter %d particle %d dim %d: %v != %v", fi, i, d, wf[i][d], cf[i][d])
				}
			}
		}
	}
	// Warm must clone: mutating the warm ensemble's particles must not write
	// through to the exported cloud.
	warm.FilterParticles(0)[0][0] = 99
	if cloud[0][0] == 99 {
		t.Fatal("Warm aliased the input cloud instead of cloning")
	}
}

// TestWarmPadsShortCloud: a cloud smaller than Filters×Particles still yields
// a full ensemble, padded deterministically by cycling group members.
func TestWarmPadsShortCloud(t *testing.T) {
	cloud := []linalg.Vector{
		{1, 0, 0, 0, 0, 0},
		{2, 0, 0, 0, 0, 0},
		{3, 0, 0, 0, 0, 0},
	}
	e := Warm(Options{Particles: 4, Filters: 2, KernelStd: 0.3}, cloud)
	if e.NumFilters() != 2 {
		t.Fatalf("filters = %d, want 2", e.NumFilters())
	}
	for fi := 0; fi < 2; fi++ {
		f := e.FilterParticles(fi)
		if len(f) != 4 {
			t.Fatalf("filter %d has %d particles, want 4", fi, len(f))
		}
	}
	// First group is cloud[0:1], second cloud[1:3]; padding cycles members.
	if e.FilterParticles(0)[3][0] != 1 {
		t.Fatalf("filter 0 padding = %v, want 1", e.FilterParticles(0)[3][0])
	}
	if got := e.FilterParticles(1)[2][0]; got != 2 {
		t.Fatalf("filter 1 padding = %v, want 2", got)
	}
}
