package pfilter

import (
	"math"
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
)

// twoLobeFails is a synthetic bimodal failure region mimicking the SRAM
// cell's symmetric lobes: failure when |x0| > 3.
func twoLobeFails(x linalg.Vector) bool { return math.Abs(x[0]) > 3 }

// twoLobeWeight is I(x)·P(x).
func twoLobeWeight(x linalg.Vector) float64 {
	if !twoLobeFails(x) {
		return 0
	}
	return randx.StdNormalPDF(x)
}

func TestBoundaryInitOnBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := BoundaryInit(rng, 2, 200, 8, 0.02, twoLobeFails)
	if len(pts) < 20 {
		t.Fatalf("too few boundary points: %d", len(pts))
	}
	for _, p := range pts {
		if !twoLobeFails(p) {
			t.Fatalf("point %v not in failure region", p)
		}
		// Boundary is |x0| = 3: along the ray the boundary crossing has
		// |x0| only slightly above 3.
		if math.Abs(p[0]) > 3.5 {
			t.Fatalf("point %v too deep inside failure region", p)
		}
	}
}

func TestBoundaryInitNoFailureRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := BoundaryInit(rng, 3, 50, 5, 0.05, func(linalg.Vector) bool { return false })
	if len(pts) != 0 {
		t.Fatalf("expected no points, got %d", len(pts))
	}
}

func TestNewPanicsWithoutInitialParticles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(rand.New(rand.NewSource(3)), Options{}, nil)
}

func TestEnsembleTracksBothLobes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	init := BoundaryInit(rng, 2, 100, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 40, Filters: 2}, init)
	if e.NumFilters() != 2 {
		t.Fatalf("filters = %d", e.NumFilters())
	}
	e.Run(rng, twoLobeWeight, 10)

	// After convergence the union must cover both lobes; each filter should
	// be mode-pure.
	pos, neg := 0, 0
	for _, p := range e.Particles() {
		if p[0] > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("a lobe was lost: pos=%d neg=%d", pos, neg)
	}
	for fi := 0; fi < e.NumFilters(); fi++ {
		fp, fn := 0, 0
		for _, p := range e.FilterParticles(fi) {
			if p[0] > 0 {
				fp++
			} else {
				fn++
			}
		}
		if fp != 0 && fn != 0 {
			t.Fatalf("filter %d straddles lobes: %d/%d", fi, fp, fn)
		}
	}
}

func TestSingleFilterDegeneratesToOneLobe(t *testing.T) {
	// The failure mode the paper warns about: one filter collapses onto a
	// single lobe after enough resampling rounds.
	rng := rand.New(rand.NewSource(5))
	init := BoundaryInit(rng, 2, 100, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 40, Filters: 1}, init)
	e.Run(rng, twoLobeWeight, 25)
	pos, neg := 0, 0
	for _, p := range e.Particles() {
		if p[0] > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos != 0 && neg != 0 {
		// Collapse is probabilistic but over 25 rounds with 40 particles it
		// is overwhelmingly likely; tolerate a tiny minority share.
		minority := math.Min(float64(pos), float64(neg)) / float64(pos+neg)
		if minority > 0.1 {
			t.Fatalf("single filter kept both lobes: pos=%d neg=%d", pos, neg)
		}
	}
}

func TestParticlesConcentrateNearHighWeight(t *testing.T) {
	// Weight peaks at the boundary point closest to the origin (3, 0): after
	// convergence particles should cluster around |x0|≈3, x1≈0.
	rng := rand.New(rand.NewSource(6))
	init := BoundaryInit(rng, 2, 100, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 60, Filters: 2, KernelStd: 0.25}, init)
	e.Run(rng, twoLobeWeight, 12)
	for _, p := range e.Particles() {
		if math.Abs(p[0]) > 4.5 {
			t.Fatalf("particle drifted deep into the tail: %v", p)
		}
		if math.Abs(p[1]) > 3 {
			t.Fatalf("particle far off the weight ridge: %v", p)
		}
	}
}

func TestStepRecordsShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	init := BoundaryInit(rng, 2, 60, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 30, Filters: 2}, init)
	recs := e.Step(rng, twoLobeWeight)
	if len(recs) != e.NumFilters() {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if len(r.Candidates) != 30 || len(r.Weights) != 30 || len(r.Resampled) != 30 {
			t.Fatalf("bad record shapes: %d %d %d", len(r.Candidates), len(r.Weights), len(r.Resampled))
		}
	}
}

func TestAllZeroWeightsKeepsParticles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	init := []linalg.Vector{{5, 0}, {5, 0.1}, {-5, 0}}
	e := New(rng, Options{Particles: 10, Filters: 1}, init)
	before := append([]linalg.Vector(nil), e.Particles()...)
	e.Step(rng, func(linalg.Vector) float64 { return 0 })
	after := e.Particles()
	for i := range before {
		if !before[i].Equal(after[i], 0) {
			t.Fatal("particles changed despite zero weights")
		}
	}
}

func TestGMMFromEnsemble(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	init := BoundaryInit(rng, 2, 60, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 20, Filters: 2, KernelStd: 0.3}, init)
	e.Run(rng, twoLobeWeight, 5)
	g := e.GMM(nil)
	if len(g.Means) != len(e.Particles()) {
		t.Fatalf("GMM components = %d", len(g.Means))
	}
	if g.Sigma[0] != 0.3 || g.Sigma[1] != 0.3 {
		t.Fatalf("GMM sigma = %v", g.Sigma)
	}
	// Samples from the proposal should fall in/near the failure lobes far
	// more often than the standard normal does (P(|x0|>3) ≈ 0.0027).
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if twoLobeFails(g.Sample(rng)) {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.2 {
		t.Fatalf("proposal hit rate too low: %v", frac)
	}
}

func TestESS(t *testing.T) {
	if got := ESS([]float64{1, 1, 1, 1}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("uniform ESS = %v", got)
	}
	if got := ESS([]float64{1, 0, 0, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("degenerate ESS = %v", got)
	}
	if got := ESS([]float64{0, 0}); got != 0 {
		t.Fatalf("zero ESS = %v", got)
	}
	if got := ESS([]float64{1, -5, 1}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("negative weights must be ignored: %v", got)
	}
}

func TestKMeansSplitsSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var pts []linalg.Vector
	for i := 0; i < 30; i++ {
		pts = append(pts, linalg.Vector{10 + rng.NormFloat64()*0.1, 0})
		pts = append(pts, linalg.Vector{-10 + rng.NormFloat64()*0.1, 0})
	}
	groups := kmeans(rng, pts, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, g := range groups {
		sign := g[0][0] > 0
		for _, p := range g {
			if (p[0] > 0) != sign {
				t.Fatal("cluster mixes separated groups")
			}
		}
	}
}

func TestPoolGMMAccumulatesAcrossRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	init := BoundaryInit(rng, 2, 80, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 30, Filters: 2}, init)
	if e.PoolSize() != 0 {
		t.Fatalf("pool not empty before stepping: %d", e.PoolSize())
	}
	e.Run(rng, twoLobeWeight, 8)
	if e.PoolSize() == 0 {
		t.Fatal("pool empty after running")
	}
	g := e.PoolGMM(nil, 0) // no cap
	if len(g.Means) != e.PoolSize() {
		t.Fatalf("uncapped pool GMM has %d comps, pool %d", len(g.Means), e.PoolSize())
	}
	if len(g.Weights) != len(g.Means) {
		t.Fatal("weights missing")
	}
	// Proposal samples must hit the failure region frequently.
	hits := 0
	for i := 0; i < 1000; i++ {
		if twoLobeFails(g.Sample(rng)) {
			hits++
		}
	}
	if hits < 300 {
		t.Fatalf("pool proposal hit rate too low: %d/1000", hits)
	}
}

func TestPoolGMMCapKeepsDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	init := BoundaryInit(rng, 2, 80, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 40, Filters: 2}, init)
	e.Run(rng, twoLobeWeight, 10)
	if e.PoolSize() <= 100 {
		t.Skipf("pool too small to exercise the cap: %d", e.PoolSize())
	}
	g := e.PoolGMM(nil, 100)
	if len(g.Means) != 100 {
		t.Fatalf("capped GMM has %d comps", len(g.Means))
	}
	// Both lobes should still be represented after capping.
	pos, neg := 0, 0
	for _, m := range g.Means {
		if m[0] > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("cap lost a lobe: %d/%d", pos, neg)
	}
}

func TestPoolGMMFallsBackWithoutPool(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	init := BoundaryInit(rng, 2, 60, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 20, Filters: 2}, init)
	// No steps run: pool empty, must fall back to the particle GMM.
	g := e.PoolGMM(nil, 100)
	if len(g.Means) != len(e.Particles()) {
		t.Fatalf("fallback GMM has %d comps, particles %d", len(g.Means), len(e.Particles()))
	}
}

func TestAdaptiveSigmaFloorsAndSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	init := BoundaryInit(rng, 2, 80, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 40, Filters: 2, KernelStd: 0.3}, init)
	e.Run(rng, twoLobeWeight, 6)
	sig := e.AdaptiveSigma(0.3)
	if len(sig) != 2 {
		t.Fatalf("sigma dim %d", len(sig))
	}
	for d, s := range sig {
		if s < 0.3 {
			t.Fatalf("dim %d below floor: %v", d, s)
		}
		if s > 5 {
			t.Fatalf("dim %d implausibly wide: %v", d, s)
		}
	}
	// With a huge floor, the floor must win.
	sig2 := e.AdaptiveSigma(10)
	for _, s := range sig2 {
		if s != 10 {
			t.Fatalf("floor not applied: %v", sig2)
		}
	}
}

func TestRunDefaultIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	init := BoundaryInit(rng, 2, 60, 8, 0.05, twoLobeFails)
	e := New(rng, Options{Particles: 10, Filters: 1, Iterations: 3}, init)
	e.Run(rng, twoLobeWeight, 0) // 0 -> Options.Iterations
	// 3 rounds × 1 filter × 10 particles, only positive weights pooled.
	if e.PoolSize() > 30 {
		t.Fatalf("pool %d exceeds 3 rounds of candidates", e.PoolSize())
	}
}
