package pfilter

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
)

// stubStaged mirrors the ParWeight below under the staged contract: one
// uniform consumed from the candidate substream, weight u·P(x).
type stubStaged struct {
	us       []float64
	resolves int
}

func (s *stubStaged) Prepare(rng *rand.Rand, idx int, x linalg.Vector) {
	s.us[idx] = rng.Float64()
}

func (s *stubStaged) Resolve(lo, hi int) { s.resolves++ }

func (s *stubStaged) Value(idx int, x linalg.Vector) float64 {
	return s.us[idx] * randx.StdNormalPDF(x)
}

// TestStepParStagedMatchesStepPar pins the staged measurement round to
// StepPar over the equivalent scalar weight — identical records and
// identical post-round ensembles at several worker counts.
func TestStepParStagedMatchesStepPar(t *testing.T) {
	weight := func(rng *rand.Rand, idx int, x linalg.Vector) float64 {
		return rng.Float64() * randx.StdNormalPDF(x)
	}
	dim := 3
	seedPts := func() []linalg.Vector {
		rng := rand.New(rand.NewSource(2))
		pts := make([]linalg.Vector, 6)
		for i := range pts {
			pts[i] = randx.NormalVector(rng, dim).Scale(3)
		}
		return pts
	}
	opts := Options{Particles: 15, Filters: 2, KernelStd: 0.3}
	for _, workers := range []int{1, 4} {
		a := New(rand.New(rand.NewSource(3)), opts, seedPts())
		b := New(rand.New(rand.NewSource(3)), opts, seedPts())
		for round := 0; round < 3; round++ {
			seed := int64(100 + round)
			recA := a.StepPar(seed, weight, nil, workers)
			sv := &stubStaged{us: make([]float64, opts.Particles*opts.Filters)}
			recB := b.StepParStaged(seed, sv, nil, workers)
			if !reflect.DeepEqual(recA, recB) {
				t.Fatalf("workers=%d round=%d: staged records diverged", workers, round)
			}
			if sv.resolves != 1 {
				t.Fatalf("expected exactly one Resolve barrier, got %d", sv.resolves)
			}
			if !reflect.DeepEqual(a.Particles(), b.Particles()) {
				t.Fatalf("workers=%d round=%d: ensembles diverged", workers, round)
			}
		}
	}
}

// TestBoundaryInitBatchMatchesPar pins the lockstep boundary search to the
// scalar one: identical boundary points and identical indicator-call
// totals for the same seed.
func TestBoundaryInitBatchMatchesPar(t *testing.T) {
	fails := func(x linalg.Vector) bool { return x.Norm() > 3.5 }
	var nScalar, nBatch atomic.Int64
	countedFails := func(x linalg.Vector) bool {
		nScalar.Add(1)
		return fails(x)
	}
	failsBatch := func(pts []linalg.Vector, out []bool) {
		nBatch.Add(int64(len(pts)))
		for i, p := range pts {
			out[i] = fails(p)
		}
	}
	for _, workers := range []int{1, 4} {
		nScalar.Store(0)
		nBatch.Store(0)
		want := BoundaryInitPar(77, 4, 64, 8, 0.05, countedFails, workers)
		got := BoundaryInitBatch(77, 4, 64, 8, 0.05, failsBatch, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: boundary points diverged (%d vs %d found)", workers, len(got), len(want))
		}
		if nScalar.Load() != nBatch.Load() {
			t.Fatalf("workers=%d: indicator calls diverged: scalar %d, batch %d", workers, nScalar.Load(), nBatch.Load())
		}
	}
}
