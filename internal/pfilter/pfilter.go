// Package pfilter implements the particle-filter machinery of the paper's
// stage 1 (Section III-B, steps (1)–(4)): radial-bisection initialization on
// the failure boundary, Gaussian-mixture prediction (eq. (15)), weight
// measurement (eq. (16)) and low-variance resampling, organized as an
// ensemble of independent filters so the two symmetric failure lobes of the
// SRAM cell are tracked without particle degeneracy.
package pfilter

import (
	"math"
	"math/rand"
	"sort"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
)

// Weight scores a candidate particle; the paper uses
// w(x) = Pfail_RTN(x) · P_RDF(x) (eq. (16)), which for the RDF-only flow
// reduces to I(x)·P(x).
type Weight func(x linalg.Vector) float64

// Options configures the ensemble.
type Options struct {
	Particles  int     // particles per filter (default 50)
	Filters    int     // independent filters (default 2; the cell has 2 failure lobes)
	KernelStd  float64 // prediction-kernel sigma, normalized units (default 0.3)
	Iterations int     // default Run iterations (default 10, as in the paper)
}

func (o *Options) fill() {
	if o.Particles == 0 {
		o.Particles = 50
	}
	if o.Filters == 0 {
		o.Filters = 2
	}
	if o.KernelStd == 0 {
		o.KernelStd = 0.3
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
}

// Ensemble is a set of independent particle filters over the same weight
// landscape.
type Ensemble struct {
	opts    Options
	filters [][]linalg.Vector
	poolX   []linalg.Vector // every positively-weighted candidate ever scored
	poolW   []float64

	// Scratch for uniqueSources: marks[j] == markEpoch means source j was
	// already seen this round. The epoch bump makes the pass O(len(idx))
	// with no clearing and no per-round map allocation.
	marks     []int
	markEpoch int
}

// BoundaryInit performs the paper's step (1): directions uniform on the unit
// D-sphere, bisection along each ray for the failure boundary, one particle
// per direction that actually fails within radius rmax. fails is the
// indicator I(x) (simulation cost is counted by the caller's closure).
//
// The returned points lie on the failure boundary to within rtol. Directions
// that never fail inside rmax are dropped, so the result may hold fewer than
// directions points.
func BoundaryInit(rng *rand.Rand, dim, directions int, rmax, rtol float64, fails func(linalg.Vector) bool) []linalg.Vector {
	if rtol <= 0 {
		rtol = 0.05
	}
	var out []linalg.Vector
	for k := 0; k < directions; k++ {
		d := randx.SphereDirection(rng, dim)
		if !fails(d.Scale(rmax)) {
			continue
		}
		lo, hi := 0.0, rmax
		for hi-lo > rtol {
			mid := 0.5 * (lo + hi)
			if fails(d.Scale(mid)) {
				hi = mid
			} else {
				lo = mid
			}
		}
		out = append(out, d.Scale(hi)) // just inside the failure region
	}
	return out
}

// New builds an ensemble from initial boundary particles. The points are
// clustered into opts.Filters groups by k-means on position, so that each
// filter starts mode-pure and the per-filter resampling cannot merge the two
// failure lobes (the degeneracy the paper warns about). Each filter is then
// padded/truncated to opts.Particles by resampling its own members.
func New(rng *rand.Rand, opts Options, initial []linalg.Vector) *Ensemble {
	opts.fill()
	if len(initial) == 0 {
		panic("pfilter: no initial particles (no failing directions found)")
	}
	e := &Ensemble{opts: opts}
	groups := kmeans(rng, initial, opts.Filters)
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		f := make([]linalg.Vector, opts.Particles)
		for i := range f {
			f[i] = g[rng.Intn(len(g))].Clone()
		}
		e.filters = append(e.filters, f)
	}
	return e
}

// Warm rebuilds an ensemble from a previously exported particle cloud (the
// concatenation Particles() produced) without consuming any randomness: the
// cloud is split sequentially into opts.Filters groups, preserving the
// original per-filter grouping when the cloud came from an ensemble with the
// same geometry. Groups shorter than opts.Particles are padded by cycling
// their own members. This is the cross-point warm-start entry: a sweep
// planner seeds point i's filters from point i-1's final cloud instead of
// re-running boundary bisection.
func Warm(opts Options, cloud []linalg.Vector) *Ensemble {
	opts.fill()
	if len(cloud) == 0 {
		panic("pfilter: empty warm cloud")
	}
	e := &Ensemble{opts: opts}
	nf := opts.Filters
	if nf > len(cloud) {
		nf = len(cloud)
	}
	per := len(cloud) / nf
	for fi := 0; fi < nf; fi++ {
		g := cloud[fi*per:]
		if fi < nf-1 {
			g = g[:per]
		}
		f := make([]linalg.Vector, opts.Particles)
		for i := range f {
			f[i] = g[i%len(g)].Clone()
		}
		e.filters = append(e.filters, f)
	}
	return e
}

// NumFilters returns the number of non-empty filters.
func (e *Ensemble) NumFilters() int { return len(e.filters) }

// Particles returns the union of all filters' current particles.
func (e *Ensemble) Particles() []linalg.Vector {
	var out []linalg.Vector
	for _, f := range e.filters {
		out = append(out, f...)
	}
	return out
}

// FilterParticles returns the current particles of filter i.
func (e *Ensemble) FilterParticles(i int) []linalg.Vector { return e.filters[i] }

// StepRecord captures one iteration of one filter for observability
// (Fig. 4 renders these snapshots).
type StepRecord struct {
	Candidates []linalg.Vector
	Weights    []float64
	Resampled  []linalg.Vector
	// Unique is the number of distinct candidates that survived resampling —
	// a collapse diagnostic (Unique=1 means the filter sits on one point).
	// Zero on a degenerate round where the previous cloud was kept.
	Unique int
	// WeightSum is the round's positive weight mass. Zero marks a starved
	// lobe: no candidate found failure probability, the cloud was kept.
	WeightSum float64
}

// uniqueSources counts the distinct source indices in a resampling index
// vector (entries in [0, len(idx)), as systematic resampling produces) via
// the ensemble's epoch-marked scratch — an index-mark pass instead of the
// map a naive implementation would allocate per filter per round.
func (e *Ensemble) uniqueSources(idx []int) int {
	if len(e.marks) < len(idx) {
		e.marks = make([]int, len(idx))
		e.markEpoch = 0
	}
	e.markEpoch++
	epoch := e.markEpoch
	n := 0
	for _, j := range idx {
		if e.marks[j] != epoch {
			e.marks[j] = epoch
			n++
		}
	}
	return n
}

// Step advances every filter one prediction/measurement/resampling round and
// returns per-filter records. If every candidate of a filter receives zero
// weight, that filter keeps its previous particles for this round.
func (e *Ensemble) Step(rng *rand.Rand, weight Weight) []StepRecord {
	records := make([]StepRecord, len(e.filters))
	for fi, particles := range e.filters {
		n := len(particles)
		cands := make([]linalg.Vector, n)
		ws := make([]float64, n)
		dim := len(particles[0])
		for i := 0; i < n; i++ {
			// Prediction (eq. (15)): mixture kernel centred on a random
			// current particle.
			base := particles[rng.Intn(n)]
			x := make(linalg.Vector, dim)
			for d := range x {
				x[d] = base[d] + e.opts.KernelStd*rng.NormFloat64()
			}
			cands[i] = x
			ws[i] = weight(x) // Measurement (eq. (16))
		}
		total := 0.0
		for _, w := range ws {
			if w > 0 {
				total += w
			}
		}
		var next []linalg.Vector
		unique := 0
		if total <= 0 || math.IsNaN(total) {
			next = particles // degenerate round: keep previous cloud
			total = 0
		} else {
			idx := randx.SystematicResample(rng, ws, n)
			next = make([]linalg.Vector, n)
			for i, j := range idx {
				next[i] = cands[j]
			}
			unique = e.uniqueSources(idx)
		}
		records[fi] = StepRecord{Candidates: cands, Weights: ws, Resampled: next, Unique: unique, WeightSum: total}
		e.filters[fi] = next
		for i, w := range ws {
			if w > 0 {
				e.poolX = append(e.poolX, cands[i])
				e.poolW = append(e.poolW, w)
			}
		}
	}
	return records
}

// Run executes iters rounds (the paper reports ten rounds suffice).
func (e *Ensemble) Run(rng *rand.Rand, weight Weight, iters int) {
	if iters <= 0 {
		iters = e.opts.Iterations
	}
	for i := 0; i < iters; i++ {
		e.Step(rng, weight)
	}
}

// GMM builds the importance-sampling alternative distribution of eq. (18):
// an equal-weight Gaussian mixture centred on every current particle with
// the given shared diagonal sigma (defaulting to the prediction kernel).
func (e *Ensemble) GMM(sigma linalg.Vector) *montecarlo.GMM {
	parts := e.Particles()
	if sigma == nil {
		dim := len(parts[0])
		sigma = make(linalg.Vector, dim)
		for i := range sigma {
			sigma[i] = e.opts.KernelStd
		}
	}
	means := make([]linalg.Vector, len(parts))
	for i, p := range parts {
		means[i] = p.Clone()
	}
	return &montecarlo.GMM{Means: means, Sigma: sigma}
}

// PoolGMM builds the eq.-(18) alternative distribution from the cumulative
// pool of positively-weighted candidates scored across every measurement
// round — a population-Monte-Carlo refinement that keeps the diversity the
// per-round resampling discards. At most maxComp components are kept (the
// highest-weight ones); the weights are the measured I(x)·P(x) scores, so
// the mixture approximates the optimal alternative distribution directly.
// Falls back to the resampled-particle mixture when the pool is empty.
func (e *Ensemble) PoolGMM(sigma linalg.Vector, maxComp int) *montecarlo.GMM {
	if len(e.poolX) == 0 {
		return e.GMM(sigma)
	}
	xs, ws := e.poolX, e.poolW
	if maxComp > 0 && len(xs) > maxComp {
		// Keep half by weight (the Qopt peak) and half uniformly at random
		// (tangential coverage of the failure manifold — the peak alone
		// underrepresents the diffuse mass that dominates Pfail in high
		// dimension).
		type entry struct {
			x linalg.Vector
			w float64
		}
		entries := make([]entry, len(xs))
		for i := range xs {
			entries[i] = entry{xs[i], ws[i]}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].w > entries[j].w })
		top := maxComp / 2
		kept := append([]entry(nil), entries[:top]...)
		rest := entries[top:]
		for _, i := range rand.New(rand.NewSource(int64(len(entries)))).Perm(len(rest))[:maxComp-top] {
			kept = append(kept, rest[i])
		}
		xs = make([]linalg.Vector, len(kept))
		ws = make([]float64, len(kept))
		for i, en := range kept {
			xs[i], ws[i] = en.x, en.w
		}
	}
	if sigma == nil {
		sigma = poolBandwidth(xs, e.opts.KernelStd)
	}
	means := make([]linalg.Vector, len(xs))
	for i, p := range xs {
		means[i] = p.Clone()
	}
	return &montecarlo.GMM{Means: means, Sigma: sigma, Weights: append([]float64(nil), ws...)}
}

// poolBandwidth is a Silverman-style kernel bandwidth from the unweighted
// spread of the kept components: sigma_d = 1.06·std_d·n^(−1/(D+4)), floored
// at the prediction kernel.
func poolBandwidth(xs []linalg.Vector, floor float64) linalg.Vector {
	dim := len(xs[0])
	n := float64(len(xs))
	factor := 1.06 * math.Pow(n, -1/float64(dim+4))
	sigma := make(linalg.Vector, dim)
	for d := 0; d < dim; d++ {
		var mean, m2 float64
		for i, p := range xs {
			delta := p[d] - mean
			mean += delta / float64(i+1)
			m2 += delta * (p[d] - mean)
		}
		s := 0.0
		if len(xs) > 1 {
			s = factor * math.Sqrt(m2/(n-1))
		}
		if s < floor {
			s = floor
		}
		sigma[d] = s
	}
	return sigma
}

// PoolSize returns the number of pooled candidates.
func (e *Ensemble) PoolSize() int { return len(e.poolX) }

// AdaptiveSigma returns a per-dimension bandwidth for the eq.-(18) mixture:
// the average within-filter standard deviation of the particle cloud,
// floored at floor. Using within-filter spread (rather than the global
// cloud) keeps the bandwidth from being inflated by the distance between
// failure lobes tracked by different filters.
func (e *Ensemble) AdaptiveSigma(floor float64) linalg.Vector {
	dim := len(e.filters[0][0])
	sigma := make(linalg.Vector, dim)
	for d := 0; d < dim; d++ {
		total := 0.0
		for _, f := range e.filters {
			var mean, m2 float64
			for i, p := range f {
				delta := p[d] - mean
				mean += delta / float64(i+1)
				m2 += delta * (p[d] - mean)
			}
			if len(f) > 1 {
				total += math.Sqrt(m2 / float64(len(f)-1))
			}
		}
		s := total / float64(len(e.filters))
		if s < floor {
			s = floor
		}
		sigma[d] = s
	}
	return sigma
}

// ESS returns the effective sample size of a weight vector,
// (Σw)² / Σw² — a standard degeneracy diagnostic.
func ESS(weights []float64) float64 {
	var s, s2 float64
	for _, w := range weights {
		if w > 0 {
			s += w
			s2 += w * w
		}
	}
	if s2 == 0 {
		return 0
	}
	return s * s / s2
}

// kmeans clusters points into at most k groups (k small). Empty clusters are
// dropped. Deterministic given rng.
func kmeans(rng *rand.Rand, pts []linalg.Vector, k int) [][]linalg.Vector {
	if k <= 1 || len(pts) <= k {
		return [][]linalg.Vector{pts}
	}
	// Init: k distinct random points.
	centers := make([]linalg.Vector, k)
	perm := rng.Perm(len(pts))
	for i := 0; i < k; i++ {
		centers[i] = pts[perm[i]].Clone()
	}
	assign := make([]int, len(pts))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := p.Dist(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centers {
			sum := linalg.NewVector(len(pts[0]))
			cnt := 0
			for i, p := range pts {
				if assign[i] == c {
					sum.AddInPlace(p)
					cnt++
				}
			}
			if cnt > 0 {
				centers[c] = sum.Scale(1 / float64(cnt))
			}
		}
	}
	groups := make([][]linalg.Vector, k)
	for i, p := range pts {
		groups[assign[i]] = append(groups[assign[i]], p)
	}
	var out [][]linalg.Vector
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}
