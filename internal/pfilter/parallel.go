package pfilter

import (
	"math"
	"math/rand"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
)

// ParWeight scores a candidate particle like Weight, but under the
// deterministic-parallel contract: rng is positioned on the substream of the
// candidate's global index idx, and the function must be safe to call
// concurrently for distinct indices (any stateful labeling is deferred to
// the caller's flush barrier).
type ParWeight func(rng *rand.Rand, idx int, x linalg.Vector) float64

// BoundaryInitPar is BoundaryInit evaluated across workers goroutines: each
// direction draws from its own (seed, direction-index) substream and
// bisects independently, and the found boundary points are kept in
// direction order — so the result depends only on seed, not on the worker
// count or scheduling. fails must be safe for concurrent use.
func BoundaryInitPar(seed int64, dim, directions int, rmax, rtol float64, fails func(linalg.Vector) bool, workers int) []linalg.Vector {
	if rtol <= 0 {
		rtol = 0.05
	}
	workers = montecarlo.ClampWorkers(workers, directions)
	found := make([]linalg.Vector, directions)
	streams := randx.NewStreams(seed, workers)
	montecarlo.ParFor(workers, directions, func(w, k int) {
		rng := streams.At(w, uint64(k))
		d := randx.SphereDirection(rng, dim)
		if !fails(d.Scale(rmax)) {
			return
		}
		lo, hi := 0.0, rmax
		for hi-lo > rtol {
			mid := 0.5 * (lo + hi)
			if fails(d.Scale(mid)) {
				hi = mid
			} else {
				lo = mid
			}
		}
		found[k] = d.Scale(hi) // just inside the failure region
	})
	out := make([]linalg.Vector, 0, directions)
	for _, p := range found {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// StepPar advances every filter one prediction/measurement/resampling round
// with the measurement step parallelized across workers goroutines. Each
// candidate carries a global index (filter-major order across the whole
// ensemble); its prediction draw and weight evaluation come from substream
// (seed, index), and results land in index slots — so one round is
// bit-identical for any worker count. After the measurement barrier, flush
// (if non-nil) is called with the number of candidates scored, letting the
// caller apply deferred classifier updates in index order; resampling then
// consumes substreams at indices ≥ that count, one per filter.
//
// Within a round, every weight evaluation sees the caller's adaptive state
// frozen at the round start — the round is one batch.
func (e *Ensemble) StepPar(seed int64, weight ParWeight, flush func(scored int), workers int) []StepRecord {
	offs := make([]int, len(e.filters)+1)
	for fi, f := range e.filters {
		offs[fi+1] = offs[fi] + len(f)
	}
	total := offs[len(e.filters)]
	workers = montecarlo.ClampWorkers(workers, total)

	cands := make([]linalg.Vector, total)
	ws := make([]float64, total)
	streams := randx.NewStreams(seed, workers)
	montecarlo.ParFor(workers, total, func(w, idx int) {
		fi := 0
		for offs[fi+1] <= idx {
			fi++
		}
		particles := e.filters[fi]
		rng := streams.At(w, uint64(idx))
		// Prediction (eq. (15)): mixture kernel centred on a random current
		// particle of this candidate's filter.
		base := particles[rng.Intn(len(particles))]
		x := make(linalg.Vector, len(base))
		for d := range x {
			x[d] = base[d] + e.opts.KernelStd*rng.NormFloat64()
		}
		cands[idx] = x
		ws[idx] = weight(rng, idx, x) // Measurement (eq. (16))
	})
	if flush != nil {
		flush(total)
	}

	records := make([]StepRecord, len(e.filters))
	for fi := range e.filters {
		lo, hi := offs[fi], offs[fi+1]
		fc, fw := cands[lo:hi:hi], ws[lo:hi:hi]
		n := hi - lo
		sum := 0.0
		for _, w := range fw {
			if w > 0 {
				sum += w
			}
		}
		var next []linalg.Vector
		unique := 0
		if sum <= 0 || math.IsNaN(sum) {
			next = e.filters[fi] // degenerate round: keep previous cloud
		} else {
			idx := randx.SystematicResample(randx.Stream(seed, uint64(total+fi)), fw, n)
			next = make([]linalg.Vector, n)
			for i, j := range idx {
				next[i] = fc[j]
			}
			unique = uniqueSources(idx)
		}
		records[fi] = StepRecord{Candidates: fc, Weights: fw, Resampled: next, Unique: unique}
		e.filters[fi] = next
		// Pool positively-weighted candidates in index order, matching Step.
		for i, w := range fw {
			if w > 0 {
				e.poolX = append(e.poolX, fc[i])
				e.poolW = append(e.poolW, w)
			}
		}
	}
	return records
}
