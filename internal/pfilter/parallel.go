package pfilter

import (
	"math"
	"math/rand"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
)

// ParWeight scores a candidate particle like Weight, but under the
// deterministic-parallel contract: rng is positioned on the substream of the
// candidate's global index idx, and the function must be safe to call
// concurrently for distinct indices (any stateful labeling is deferred to
// the caller's flush barrier).
type ParWeight func(rng *rand.Rand, idx int, x linalg.Vector) float64

// BoundaryInitPar is BoundaryInit evaluated across workers goroutines: each
// direction draws from its own (seed, direction-index) substream and
// bisects independently, and the found boundary points are kept in
// direction order — so the result depends only on seed, not on the worker
// count or scheduling. fails must be safe for concurrent use.
func BoundaryInitPar(seed int64, dim, directions int, rmax, rtol float64, fails func(linalg.Vector) bool, workers int) []linalg.Vector {
	if rtol <= 0 {
		rtol = 0.05
	}
	workers = montecarlo.ClampWorkers(workers, directions)
	found := make([]linalg.Vector, directions)
	streams := randx.NewStreams(seed, workers)
	montecarlo.ParFor(workers, directions, func(w, k int) {
		rng := streams.At(w, uint64(k))
		d := randx.SphereDirection(rng, dim)
		if !fails(d.Scale(rmax)) {
			return
		}
		lo, hi := 0.0, rmax
		for hi-lo > rtol {
			mid := 0.5 * (lo + hi)
			if fails(d.Scale(mid)) {
				hi = mid
			} else {
				lo = mid
			}
		}
		found[k] = d.Scale(hi) // just inside the failure region
	})
	out := make([]linalg.Vector, 0, directions)
	for _, p := range found {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// BoundaryInitBatch is BoundaryInitPar with the indicator calls gathered
// into lockstep batches: all directions march their bisections in step,
// and every step labels one point per still-bisecting direction through a
// single failsBatch call — which the engine answers with its batched
// margin solver. Direction draws replicate BoundaryInitPar's substreams
// and bisection decisions depend only on each direction's own labels, so
// the boundary points (and the total number of indicator evaluations) are
// identical to BoundaryInitPar with the same seed. failsBatch must write
// out[i] for pts[i]; it is always called single-threaded.
func BoundaryInitBatch(seed int64, dim, directions int, rmax, rtol float64, failsBatch func(pts []linalg.Vector, out []bool), workers int) []linalg.Vector {
	if rtol <= 0 {
		rtol = 0.05
	}
	workers = montecarlo.ClampWorkers(workers, directions)
	dirs := make([]linalg.Vector, directions)
	streams := randx.NewStreams(seed, workers)
	montecarlo.ParFor(workers, directions, func(w, k int) {
		dirs[k] = randx.SphereDirection(streams.At(w, uint64(k)), dim)
	})

	// Ring probe at rmax: directions that pass there have no bracketed
	// boundary and drop out, exactly as in the scalar walk.
	pts := make([]linalg.Vector, directions)
	outs := make([]bool, directions)
	for k, d := range dirs {
		pts[k] = d.Scale(rmax)
	}
	failsBatch(pts, outs)
	lo := make([]float64, directions)
	hi := make([]float64, directions)
	failed := make([]bool, directions)
	for k, f := range outs {
		failed[k] = f
		hi[k] = rmax
	}

	// Lockstep bisection. The interval halves identically everywhere, but
	// the loop keeps a per-direction width test anyway so floating-point
	// drift between directions can never desynchronize it from the scalar
	// per-direction loop.
	stage := make([]int, 0, directions)
	for {
		stage = stage[:0]
		for k := range dirs {
			if failed[k] && hi[k]-lo[k] > rtol {
				stage = append(stage, k)
			}
		}
		if len(stage) == 0 {
			break
		}
		for j, k := range stage {
			pts[j] = dirs[k].Scale(0.5 * (lo[k] + hi[k]))
		}
		failsBatch(pts[:len(stage)], outs[:len(stage)])
		for j, k := range stage {
			mid := 0.5 * (lo[k] + hi[k])
			if outs[j] {
				hi[k] = mid
			} else {
				lo[k] = mid
			}
		}
	}

	out := make([]linalg.Vector, 0, directions)
	for k, d := range dirs {
		if failed[k] {
			out = append(out, d.Scale(hi[k])) // just inside the failure region
		}
	}
	return out
}

// StepPar advances every filter one prediction/measurement/resampling round
// with the measurement step parallelized across workers goroutines. Each
// candidate carries a global index (filter-major order across the whole
// ensemble); its prediction draw and weight evaluation come from substream
// (seed, index), and results land in index slots — so one round is
// bit-identical for any worker count. After the measurement barrier, flush
// (if non-nil) is called with the number of candidates scored, letting the
// caller apply deferred classifier updates in index order; resampling then
// consumes substreams at indices ≥ that count, one per filter.
//
// Within a round, every weight evaluation sees the caller's adaptive state
// frozen at the round start — the round is one batch.
func (e *Ensemble) StepPar(seed int64, weight ParWeight, flush func(scored int), workers int) []StepRecord {
	offs := make([]int, len(e.filters)+1)
	for fi, f := range e.filters {
		offs[fi+1] = offs[fi] + len(f)
	}
	total := offs[len(e.filters)]
	workers = montecarlo.ClampWorkers(workers, total)

	cands := make([]linalg.Vector, total)
	ws := make([]float64, total)
	streams := randx.NewStreams(seed, workers)
	montecarlo.ParFor(workers, total, func(w, idx int) {
		fi := 0
		for offs[fi+1] <= idx {
			fi++
		}
		particles := e.filters[fi]
		rng := streams.At(w, uint64(idx))
		// Prediction (eq. (15)): mixture kernel centred on a random current
		// particle of this candidate's filter.
		base := particles[rng.Intn(len(particles))]
		x := make(linalg.Vector, len(base))
		for d := range x {
			x[d] = base[d] + e.opts.KernelStd*rng.NormFloat64()
		}
		cands[idx] = x
		ws[idx] = weight(rng, idx, x) // Measurement (eq. (16))
	})
	if flush != nil {
		flush(total)
	}
	return e.resampleTail(seed, offs, cands, ws)
}

// StepParStaged is StepPar with the measurement step routed through a
// montecarlo.StagedValue: prediction draws and label decisions run in
// parallel per candidate substream exactly as in StepPar, the deferred
// indicator evaluations of the whole round settle in one Resolve barrier,
// and the weights assemble from the banked labels. One round is
// bit-identical to StepPar over a ParWeight implementing the same rule.
func (e *Ensemble) StepParStaged(seed int64, sv montecarlo.StagedValue, flush func(scored int), workers int) []StepRecord {
	offs := make([]int, len(e.filters)+1)
	for fi, f := range e.filters {
		offs[fi+1] = offs[fi] + len(f)
	}
	total := offs[len(e.filters)]
	workers = montecarlo.ClampWorkers(workers, total)

	cands := make([]linalg.Vector, total)
	ws := make([]float64, total)
	streams := randx.NewStreams(seed, workers)
	montecarlo.ParFor(workers, total, func(w, idx int) {
		fi := 0
		for offs[fi+1] <= idx {
			fi++
		}
		particles := e.filters[fi]
		rng := streams.At(w, uint64(idx))
		base := particles[rng.Intn(len(particles))]
		x := make(linalg.Vector, len(base))
		for d := range x {
			x[d] = base[d] + e.opts.KernelStd*rng.NormFloat64()
		}
		cands[idx] = x
		sv.Prepare(rng, idx, x)
	})
	sv.Resolve(0, total)
	montecarlo.ParFor(workers, total, func(w, idx int) {
		ws[idx] = sv.Value(idx, cands[idx])
	})
	if flush != nil {
		flush(total)
	}
	return e.resampleTail(seed, offs, cands, ws)
}

// resampleTail is the shared post-measurement half of a round: per-filter
// systematic resampling from the scored candidates, record assembly, and
// pooling of the positively-weighted candidates. Deterministic given
// (seed, offs, cands, ws) — both Step variants feed it identical inputs.
func (e *Ensemble) resampleTail(seed int64, offs []int, cands []linalg.Vector, ws []float64) []StepRecord {
	total := offs[len(e.filters)]
	records := make([]StepRecord, len(e.filters))
	for fi := range e.filters {
		lo, hi := offs[fi], offs[fi+1]
		fc, fw := cands[lo:hi:hi], ws[lo:hi:hi]
		n := hi - lo
		sum := 0.0
		for _, w := range fw {
			if w > 0 {
				sum += w
			}
		}
		var next []linalg.Vector
		unique := 0
		if sum <= 0 || math.IsNaN(sum) {
			next = e.filters[fi] // degenerate round: keep previous cloud
			sum = 0
		} else {
			idx := randx.SystematicResample(randx.Stream(seed, uint64(total+fi)), fw, n)
			next = make([]linalg.Vector, n)
			for i, j := range idx {
				next[i] = fc[j]
			}
			unique = e.uniqueSources(idx)
		}
		records[fi] = StepRecord{Candidates: fc, Weights: fw, Resampled: next, Unique: unique, WeightSum: sum}
		e.filters[fi] = next
		// Pool positively-weighted candidates in index order, matching Step.
		for i, w := range fw {
			if w > 0 {
				e.poolX = append(e.poolX, fc[i])
				e.poolW = append(e.poolW, w)
			}
		}
	}
	return records
}
