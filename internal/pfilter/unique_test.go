package pfilter

import (
	"math/rand"
	"testing"
)

// uniqueSourcesMap is the reference implementation uniqueSources replaced:
// a per-call map. Kept here to cross-check the epoch-marked pass.
func uniqueSourcesMap(idx []int) int {
	seen := make(map[int]struct{}, len(idx))
	for _, j := range idx {
		seen[j] = struct{}{}
	}
	return len(seen)
}

// TestUniqueSources cross-checks the epoch-marked scratch pass against the
// map reference over randomized index vectors, including repeated calls on
// one ensemble (the epoch must isolate rounds) and growing/shrinking
// vectors (the scratch must survive reallocation).
func TestUniqueSources(t *testing.T) {
	e := &Ensemble{}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(300)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		got := e.uniqueSources(idx)
		want := uniqueSourcesMap(idx)
		if got != want {
			t.Fatalf("round %d (n=%d): uniqueSources = %d, want %d", round, n, got, want)
		}
	}
	// Degenerate shapes.
	if got := e.uniqueSources([]int{0, 0, 0, 0}); got != 1 {
		t.Fatalf("collapsed vector: got %d, want 1", got)
	}
	if got := e.uniqueSources([]int{3, 2, 1, 0}); got != 4 {
		t.Fatalf("permutation: got %d, want 4", got)
	}
	if got := e.uniqueSources(nil); got != 0 {
		t.Fatalf("empty vector: got %d, want 0", got)
	}
}

// BenchmarkUniqueSources measures the resampling-diagnostic pass both ways:
// the epoch-marked scratch (what Step/resampleTail run every filter every
// round) against the map it replaced. Run with -benchmem: the marks variant
// is allocation-free after the first call.
func BenchmarkUniqueSources(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = rng.Intn(len(idx))
	}
	b.Run("marks", func(b *testing.B) {
		e := &Ensemble{}
		e.uniqueSources(idx) // warm the scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.uniqueSources(idx)
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			uniqueSourcesMap(idx)
		}
	})
}
